// Aptos (DiemBFT) model tests: rotating leaders, pacemaker timeouts,
// leader reputation, capped capacity, Block-STM duplicate cost.
#include "chains/aptos/aptos.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace stabl::aptos {
namespace {

using testing::Harness;

void build(Harness& harness, std::size_t n = 10, AptosConfig config = {},
           double vcpus = 4.0) {
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 13;
  node_config.vcpus = vcpus;
  harness.nodes =
      make_cluster(harness.simulation, harness.network, node_config, config);
}

AptosNode& node_at(Harness& harness, std::size_t index) {
  return static_cast<AptosNode&>(*harness.nodes[index]);
}

TEST(Aptos, BaselineCommitsFastAndFully) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(30));
  harness.start_all();
  harness.simulation.run_until(sim::sec(35));
  EXPECT_GT(harness.total_client_committed(), 5700u);
  testing::expect_prefix_consistent(harness);
  testing::expect_no_double_execution(harness);
}

TEST(Aptos, LeadersRotate) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(20));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  std::set<net::NodeId> leaders;
  for (const auto& block : harness.nodes[0]->ledger().blocks()) {
    leaders.insert(block.proposer);
  }
  EXPECT_EQ(leaders.size(), 10u) << "round-robin over all validators";
}

TEST(Aptos, DeadLeaderRoundsTimeOutThenReputationExcludes) {
  AptosConfig config;
  config.leader_fail_threshold = 3;  // exclude quickly for the test
  Harness harness;
  build(harness, 10, config);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  harness.nodes[7]->kill();
  harness.simulation.run_until(sim::sec(40));
  EXPECT_TRUE(node_at(harness, 0).excluded_leaders().contains(7));
  // After exclusion, throughput returns to the offered load.
  const auto at_40 = harness.nodes[0]->ledger().tx_count();
  harness.simulation.run_until(sim::sec(60));
  EXPECT_GT(harness.nodes[0]->ledger().tx_count() - at_40, 3200u);
}

TEST(Aptos, HaltsWithoutQuorumRecoversDegraded) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(120));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->kill();  // t+1
  harness.simulation.run_until(sim::sec(60));
  const auto during = harness.nodes[0]->ledger().tx_count();
  EXPECT_LT(during, 4600u) << "no quorum, no commits";
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->start();
  harness.simulation.run_until(sim::sec(120));
  const auto after = harness.nodes[0]->ledger().tx_count();
  EXPECT_GT(after, during + 5000u) << "commits resume";
  // Capacity is only modestly above the offered load: the backlog from the
  // 40 s outage cannot have fully drained yet.
  EXPECT_LT(after, harness.total_client_submitted() - 2000u)
      << "backlog still pending (the paper's unrecoverable drop)";
}

TEST(Aptos, DuplicateSubmissionsTriggerSpeculativeAborts) {
  Harness harness;
  build(harness, 10, AptosConfig{}, /*vcpus=*/8.0);
  harness.add_clients(5, 40.0, sim::sec(20), /*fanout=*/4);
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  std::uint64_t aborts = 0;
  for (const auto& node : harness.nodes) {
    aborts += static_cast<const AptosNode&>(*node).speculative_aborts();
  }
  // ~4 copies of every transaction reach every node: ~3 aborts per tx/node.
  EXPECT_GT(aborts, 20000u);
}

TEST(Aptos, SecureClientRaisesLatency) {
  auto mean_latency = [](int fanout) {
    Harness harness;
    build(harness, 10, AptosConfig{}, /*vcpus=*/8.0);
    harness.add_clients(5, 40.0, sim::sec(30), fanout);
    harness.start_all();
    harness.simulation.run_until(sim::sec(30));
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& client : harness.clients) {
      for (const double latency : client->latencies()) {
        sum += latency;
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double base = mean_latency(1);
  const double secure = mean_latency(4);
  EXPECT_GT(secure, base * 1.5)
      << "speculative re-execution contends with block execution";
}

TEST(Aptos, RestartedReplicaSyncsLedger) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  harness.nodes[9]->kill();  // f=1 <= t: chain continues
  harness.simulation.run_until(sim::sec(30));
  harness.nodes[9]->start();
  harness.simulation.run_until(sim::sec(60));
  EXPECT_GT(harness.nodes[9]->ledger().tx_count(), 9000u);
  testing::expect_prefix_consistent(harness);
}

}  // namespace
}  // namespace stabl::aptos
