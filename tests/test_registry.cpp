// The chain plugin registry (chain/registry.hpp): deterministic id
// assignment, registry-backed name parsing and dispatch, strict parameter
// merging — and the seam itself, proven by RefBFT, the tier-1 reference
// chain that only this binary links. With it linked the registry holds the
// five paper chains, their five derived nversion meta-chains, and refbft —
// and a full experiment runs on the extension chain without any core file
// knowing it exists.
#include <gtest/gtest.h>

#include <stdexcept>

#include "chain/registry.hpp"
#include "chains/refbft/refbft.hpp"
#include "core/experiment.hpp"
#include "core/oracle.hpp"

namespace stabl {
namespace {

const chain::Registry& registry() {
  // Anchor the test-only plugin, then query through the same accessor
  // production code uses (it anchors the five built-ins).
  refbft::ensure_registered();
  return core::chain_registry();
}

// ------------------------------------------------------ id determinism

TEST(Registry, PaperChainsKeepHistoricalIdsExtensionsFollow) {
  const chain::Registry& reg = registry();
  // 5 paper chains + the 5 derived nversion meta-chains + refbft.
  ASSERT_EQ(reg.size(), 11u);
  // Tier 0 alphabetical = the historical ChainKind enum values.
  EXPECT_EQ(reg.id_of("algorand"), 0u);
  EXPECT_EQ(reg.id_of("aptos"), 1u);
  EXPECT_EQ(reg.id_of("avalanche"), 2u);
  EXPECT_EQ(reg.id_of("redbelly"), 3u);
  EXPECT_EQ(reg.id_of("solana"), 4u);
  // Extensions (tier 1) sort after every paper chain, alphabetically.
  EXPECT_EQ(reg.id_of("nversion_algorand"), 5u);
  EXPECT_EQ(reg.id_of("nversion_solana"), 9u);
  EXPECT_EQ(reg.id_of("refbft"), 10u);
}

TEST(Registry, IterationOrderIsIdOrder) {
  const chain::Registry& reg = registry();
  const std::vector<chain::ChainId> ids = reg.ids();
  ASSERT_EQ(ids.size(), reg.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<chain::ChainId>(i));
  }
  EXPECT_EQ(reg.names(),
            (std::vector<std::string>{
                "algorand", "aptos", "avalanche", "redbelly", "solana",
                "nversion_algorand", "nversion_aptos", "nversion_avalanche",
                "nversion_redbelly", "nversion_solana", "refbft"}));
  EXPECT_EQ(reg.names_csv(),
            "algorand, aptos, avalanche, redbelly, solana, "
            "nversion_algorand, nversion_aptos, nversion_avalanche, "
            "nversion_redbelly, nversion_solana, refbft");
}

TEST(Registry, RegistrationAfterFinalizeThrows) {
  (void)registry().size();  // first query finalizes id assignment
  chain::ChainTraits traits;
  traits.name = "latecomer";
  traits.fault_tolerance = chain::tolerance_third;
  traits.make_cluster = [](sim::Simulation&, net::Network&,
                           const chain::NodeConfig&,
                           const chain::ChainParams&) {
    return std::vector<std::unique_ptr<chain::BlockchainNode>>{};
  };
  EXPECT_THROW(chain::Registry::global().add(std::move(traits)),
               std::logic_error);
}

// ----------------------------------------------------------- name lookup

TEST(Registry, ParseChainNameIsCaseInsensitive) {
  EXPECT_EQ(core::parse_chain_name("Redbelly"), core::ChainKind::kRedbelly);
  EXPECT_EQ(core::parse_chain_name("SOLANA"), core::ChainKind::kSolana);
  EXPECT_EQ(core::parse_chain_name("refbft"),
            core::chain_kind(registry().id_of("refbft")));
}

TEST(Registry, UnknownChainErrorListsRegisteredNames) {
  try {
    (void)core::parse_chain_name("cardano");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("cardano"), std::string::npos) << what;
    EXPECT_NE(what.find("algorand"), std::string::npos) << what;
    EXPECT_NE(what.find("refbft"), std::string::npos) << what;
  }
}

TEST(Registry, UnknownFaultErrorListsValidNames) {
  try {
    (void)core::fault_from_name("meteor");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("meteor"), std::string::npos) << what;
    EXPECT_NE(what.find("partition"), std::string::npos) << what;
    EXPECT_NE(what.find("secure-client"), std::string::npos) << what;
  }
  EXPECT_EQ(core::fault_from_name("Secure-Client"),
            core::FaultType::kSecureClient);
}

// Regression: an out-of-range ChainKind used to fall off the dispatch
// switches undefined; it must throw descriptively everywhere.
TEST(Registry, OutOfRangeChainKindThrowsDescriptively) {
  const auto bogus = static_cast<core::ChainKind>(99);
  EXPECT_THROW((void)core::to_string(bogus), std::invalid_argument);
  EXPECT_THROW((void)core::fault_tolerance(bogus, 10), std::invalid_argument);
  EXPECT_THROW((void)core::chain_traits(bogus), std::invalid_argument);
  try {
    (void)core::to_string(bogus);
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
    EXPECT_NE(what.find("registered"), std::string::npos) << what;
  }
}

// ------------------------------------------------------------ parameters

TEST(Registry, MergeParamsAppliesOverridesStrictly) {
  const chain::ChainTraits& avalanche =
      core::chain_traits(core::ChainKind::kAvalanche);
  const chain::ChainParams merged =
      chain::merge_params(avalanche, {{"cpu_target", 0.8}});
  EXPECT_DOUBLE_EQ(merged.at("cpu_target"), 0.8);
  EXPECT_DOUBLE_EQ(merged.at("throttling"), 1.0);  // default survives
  try {
    (void)chain::merge_params(avalanche, {{"cpu_tarjet", 0.8}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("avalanche"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu_tarjet"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu_target"), std::string::npos) << what;
  }
}

TEST(Registry, TolerancesMatchThePaperFormulas) {
  const chain::Registry& reg = registry();
  // §2: 20% coalitions for Algorand/Avalanche, < n/3 for the BFT chains.
  EXPECT_EQ(reg.traits(reg.id_of("algorand")).fault_tolerance(10), 1u);
  EXPECT_EQ(reg.traits(reg.id_of("aptos")).fault_tolerance(10), 3u);
  EXPECT_EQ(reg.traits(reg.id_of("refbft")).fault_tolerance(10), 3u);
  EXPECT_EQ(core::fault_tolerance(core::ChainKind::kAlgorand, 10), 1u);
}

TEST(Registry, OracleExemptionsComeFromTraits) {
  // The chains own their documented loss modes now; the oracle's defaults
  // are assembled from the registry. Derived nversion chains inherit the
  // base chain's exemptions and add 3 failover-window ones of their own.
  const chain::Registry& reg = registry();
  const auto exemptions = core::default_exemptions();
  std::size_t avalanche = 0;
  std::size_t solana = 0;
  std::size_t nversion_avalanche = 0;
  std::size_t nversion_redbelly = 0;
  for (const auto& exemption : exemptions) {
    if (exemption.chain == core::ChainKind::kAvalanche) ++avalanche;
    if (exemption.chain == core::ChainKind::kSolana) ++solana;
    if (exemption.chain ==
        core::chain_kind(reg.id_of("nversion_avalanche"))) {
      ++nversion_avalanche;
    }
    if (exemption.chain == core::chain_kind(reg.id_of("nversion_redbelly"))) {
      ++nversion_redbelly;
    }
  }
  EXPECT_EQ(avalanche, 7u);
  EXPECT_EQ(solana, 5u);
  EXPECT_EQ(nversion_avalanche, 7u + 3u);  // inherited + failover windows
  EXPECT_EQ(nversion_redbelly, 3u);        // redbelly itself exempts nothing
  // avalanche 7 + solana 5, their nversion twins +3 each, and +3 for each
  // of the three chains with no exemptions of their own.
  EXPECT_EQ(exemptions.size(), 7u + 5u + 10u + 8u + 3u * 3u);
}

// ------------------------------------------------- the seam, end to end

TEST(Registry, RefbftRunsAFullExperimentThroughTheCore) {
  core::ExperimentConfig config;
  config.chain = core::chain_kind(registry().id_of("refbft"));
  config.fault = core::FaultType::kNone;
  config.duration = sim::sec(60);
  config.inject_at = sim::sec(20);
  config.recover_at = sim::sec(40);
  const core::ExperimentResult healthy = core::run_experiment(config);
  EXPECT_TRUE(healthy.live_at_end);
  EXPECT_GT(healthy.committed, 500u);

  config.fault = core::FaultType::kCrash;  // f = t crashes: must stay live
  const core::ExperimentResult faulted = core::run_experiment(config);
  EXPECT_TRUE(faulted.live_at_end);
  EXPECT_GT(faulted.committed, 100u);
  EXPECT_LE(faulted.committed, healthy.committed);
}

TEST(Registry, RefbftHonorsItsRegisteredParameters) {
  core::ExperimentConfig config;
  config.chain = core::chain_kind(registry().id_of("refbft"));
  config.duration = sim::sec(40);
  config.inject_at = sim::sec(13);
  config.recover_at = sim::sec(26);
  config.chain_params = {{"max_block_txs", 1.0}};  // starve block capacity
  const core::ExperimentResult starved = core::run_experiment(config);
  config.chain_params.clear();
  const core::ExperimentResult normal = core::run_experiment(config);
  EXPECT_LT(starved.committed, normal.committed / 2);
}

}  // namespace
}  // namespace stabl
