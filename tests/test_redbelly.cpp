// Redbelly protocol model tests: leaderless progress, superblocks,
// crash-insensitivity, quorum loss, recovery, determinism.
#include "chains/redbelly/redbelly.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace stabl::redbelly {
namespace {

using testing::Harness;

void build(Harness& harness, std::size_t n = 10,
           RedbellyConfig config = {}) {
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 77;
  harness.nodes =
      make_cluster(harness.simulation, harness.network, node_config, config);
}

TEST(Redbelly, BaselineCommitsWorkload) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(30));
  harness.start_all();
  harness.simulation.run_until(sim::sec(35));
  // ~30s * 200tps, everything should land.
  EXPECT_GT(harness.total_client_committed(), 5500u);
  EXPECT_EQ(harness.total_client_committed(),
            harness.nodes[0]->ledger().tx_count());
}

TEST(Redbelly, ReplicasStayIdentical) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(20));
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  testing::expect_prefix_consistent(harness);
  testing::expect_no_double_execution(harness);
  // All replicas alive & connected: same height too.
  for (const auto& node : harness.nodes) {
    EXPECT_EQ(node->ledger().tx_count(),
              harness.nodes[0]->ledger().tx_count());
  }
}

TEST(Redbelly, SuperblockMergesAllProposals) {
  // Transactions submitted to different nodes land in the same superblock
  // round rather than serializing one proposer at a time.
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(20));
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  std::size_t multi_proposer_blocks = 0;
  for (const auto& block : harness.nodes[0]->ledger().blocks()) {
    std::set<chain::AccountId> senders;
    for (const auto& tx : block.txs) senders.insert(tx.from);
    if (senders.size() >= 4) ++multi_proposer_blocks;
  }
  EXPECT_GT(multi_proposer_blocks, 5u);
}

TEST(Redbelly, ToleratesTCrashesWithoutSlowdown) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  for (net::NodeId id = 5; id < 8; ++id) harness.nodes[id]->kill();  // f=t=3
  harness.simulation.run_until(sim::sec(45));
  // Leaderless DBFT: commits keep flowing at full rate.
  EXPECT_GT(harness.total_client_committed(), 7400u);
  testing::expect_prefix_consistent(harness);
}

TEST(Redbelly, HaltsBeyondThresholdThenRecovers) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->kill();  // f=t+1
  harness.simulation.run_until(sim::sec(30));
  const std::uint64_t during = harness.nodes[0]->ledger().tx_count();
  EXPECT_LT(during, 2600u) << "quorum lost: no commits during the outage";
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->start();
  harness.simulation.run_until(sim::sec(60));
  // Active recovery + superblock: the backlog clears.
  EXPECT_GT(harness.nodes[0]->ledger().tx_count(), 9000u);
  testing::expect_prefix_consistent(harness);
}

TEST(Redbelly, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Harness harness(seed);
    build(harness);
    harness.add_clients(5, 40.0, sim::sec(15));
    harness.start_all();
    harness.simulation.run_until(sim::sec(20));
    std::vector<std::uint64_t> summary;
    for (const auto& block : harness.nodes[0]->ledger().blocks()) {
      std::uint64_t h = block.round;
      for (const auto& tx : block.txs) h = chain::hash_combine(h, tx.id);
      summary.push_back(h);
    }
    return summary;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Redbelly, RestartedNodeCatchesUp) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  harness.nodes[9]->kill();  // f=1 < t: chain keeps going
  harness.simulation.run_until(sim::sec(25));
  const auto reference = harness.nodes[0]->ledger().tx_count();
  EXPECT_GT(reference, 2000u);
  harness.nodes[9]->start();
  harness.simulation.run_until(sim::sec(40));
  EXPECT_GE(harness.nodes[9]->ledger().tx_count(), reference);
  testing::expect_prefix_consistent(harness);
}

TEST(DecisionLogTest, FirstCandidateWins) {
  DecisionLog log;
  DecisionLog::Decision first;
  first.proposers = {1, 2};
  DecisionLog::Decision second;
  second.proposers = {3};
  const auto& canonical = log.decide(7, first);
  EXPECT_EQ(canonical.proposers, (std::vector<net::NodeId>{1, 2}));
  const auto& replay = log.decide(7, second);
  EXPECT_EQ(replay.proposers, (std::vector<net::NodeId>{1, 2}));
  EXPECT_NE(log.get(7), nullptr);
  EXPECT_EQ(log.get(8), nullptr);
}

}  // namespace
}  // namespace stabl::redbelly
