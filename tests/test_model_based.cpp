// Model-based and determinism property tests.
//
// The mempool is fuzzed against a trivially-correct reference model; the
// simulator is checked to be a pure function of its seed (the property
// every STABL experiment depends on).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chain/mempool.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace stabl {
namespace {

// ------------------------------------------------- mempool vs reference

/// The reference: a plain map of id -> tx plus per-sender nonce sets.
struct ReferencePool {
  std::map<chain::TxId, chain::Transaction> txs;

  bool add(const chain::Transaction& tx) {
    if (txs.contains(tx.id)) return false;
    // First-come-first-served per (sender, nonce) slot, like the mempool.
    for (const auto& [id, existing] : txs) {
      if (existing.from == tx.from && existing.nonce == tx.nonce) {
        return false;
      }
    }
    return txs.emplace(tx.id, tx).second;
  }
  void remove(const std::vector<chain::Transaction>& batch) {
    for (const auto& tx : batch) txs.erase(tx.id);
  }
  void remove_stale(const chain::Mempool::NonceFn& next_nonce) {
    for (auto it = txs.begin(); it != txs.end();) {
      if (it->second.nonce < next_nonce(it->second.from)) {
        it = txs.erase(it);
      } else {
        ++it;
      }
    }
  }
  /// Ready = nonces consecutive from the account nonce, any sender order.
  [[nodiscard]] std::set<chain::TxId> ready(
      const chain::Mempool::NonceFn& next_nonce) const {
    std::set<chain::TxId> out;
    std::map<chain::AccountId, std::map<std::uint64_t, chain::TxId>> by;
    for (const auto& [id, tx] : txs) by[tx.from][tx.nonce] = id;
    for (const auto& [sender, nonces] : by) {
      std::uint64_t expected = next_nonce(sender);
      for (auto it = nonces.lower_bound(expected); it != nonces.end();
           ++it) {
        if (it->first != expected) break;
        out.insert(it->second);
        ++expected;
      }
    }
    return out;
  }
};

class MempoolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MempoolFuzz, AgreesWithReferenceModel) {
  sim::Rng rng(GetParam());
  chain::Mempool pool;
  ReferencePool reference;
  std::map<chain::AccountId, std::uint64_t> account_nonce;
  const auto nonce_fn = [&](chain::AccountId account) {
    const auto it = account_nonce.find(account);
    return it == account_nonce.end() ? std::uint64_t{0} : it->second;
  };

  std::uint64_t next_id = 1;
  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.uniform_int(0, 9);
    if (op <= 5) {  // add a transaction with a random sender/nonce
      chain::Transaction tx;
      tx.id = next_id++;
      tx.from = static_cast<chain::AccountId>(rng.uniform_int(0, 4));
      tx.nonce = nonce_fn(tx.from) +
                 static_cast<std::uint64_t>(rng.uniform_int(0, 6));
      // Occasionally re-add an old id (duplicate).
      if (rng.chance(0.1) && tx.id > 10) tx.id -= 7;
      ASSERT_EQ(pool.add(tx), reference.add(tx)) << "step " << step;
    } else if (op <= 7) {  // commit a ready batch
      const auto batch = pool.collect_ready(
          static_cast<std::size_t>(rng.uniform_int(1, 20)), nonce_fn);
      // Batch must be a subset of the reference's ready set, in
      // consecutive nonce order per sender.
      const auto expected = reference.ready(nonce_fn);
      std::map<chain::AccountId, std::uint64_t> next_in_batch;
      for (const auto& tx : batch) {
        ASSERT_TRUE(expected.contains(tx.id)) << "step " << step;
        const auto it = next_in_batch.find(tx.from);
        const std::uint64_t want =
            it == next_in_batch.end() ? nonce_fn(tx.from) : it->second;
        ASSERT_EQ(tx.nonce, want) << "step " << step;
        next_in_batch[tx.from] = want + 1;
      }
      for (const auto& tx : batch) {
        account_nonce[tx.from] =
            std::max(account_nonce[tx.from], tx.nonce + 1);
      }
      pool.remove(batch);
      reference.remove(batch);
    } else if (op == 8) {  // external commit advances a nonce
      const auto account =
          static_cast<chain::AccountId>(rng.uniform_int(0, 4));
      account_nonce[account] = nonce_fn(account) + 1;
      pool.remove_stale(nonce_fn);
      reference.remove_stale(nonce_fn);
    } else {  // consistency probe
      ASSERT_EQ(pool.size(), reference.txs.size()) << "step " << step;
      const auto ids = pool.known_ids();
      ASSERT_EQ(ids.size(), reference.txs.size());
      for (const auto id : ids) {
        ASSERT_TRUE(reference.txs.contains(id)) << "step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MempoolFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------ sim determinism

TEST(Determinism, SimulationTraceIsAPureFunctionOfTheSeed) {
  const auto trace = [](std::uint64_t seed) {
    sim::Simulation simulation(seed);
    sim::Rng workload = simulation.rng().fork();
    std::vector<std::int64_t> events;
    // A tangle of self-rescheduling timers driven by the PRNG.
    std::function<void(int)> tick = [&](int depth) {
      events.push_back(simulation.now().count());
      if (events.size() > 500) return;
      const auto delay = sim::us(workload.uniform_int(10, 5000));
      simulation.schedule_after(delay, [&, depth] { tick(depth + 1); });
      if (workload.chance(0.3)) {
        simulation.schedule_after(delay * 2, [&, depth] { tick(depth); });
      }
    };
    tick(0);
    simulation.run_until(sim::sec(5));
    return events;
  };
  EXPECT_EQ(trace(77), trace(77));
  EXPECT_NE(trace(77), trace(78));
}

TEST(Determinism, NetworkDeliveryOrderIsStable) {
  const auto delivery_trace = [](std::uint64_t seed) {
    sim::Simulation simulation(seed);
    net::Network network(simulation, net::LatencyConfig{});
    struct Probe final : net::Endpoint {
      std::vector<std::pair<net::NodeId, std::int64_t>>* log = nullptr;
      net::NodeId self = 0;
      sim::Simulation* simulation = nullptr;
      void deliver(const net::Envelope&) override {
        log->push_back({self, simulation->now().count()});
      }
      [[nodiscard]] bool endpoint_alive() const override { return true; }
    };
    std::vector<std::pair<net::NodeId, std::int64_t>> log;
    Probe probes[4];
    for (net::NodeId id = 0; id < 4; ++id) {
      probes[id].log = &log;
      probes[id].self = id;
      probes[id].simulation = &simulation;
      network.attach(id, &probes[id]);
    }
    auto payload = std::make_shared<const net::ControlPayload>(
        net::ControlPayload::Kind::kPing);
    for (int i = 0; i < 200; ++i) {
      network.send(static_cast<net::NodeId>(i % 4),
                   static_cast<net::NodeId>((i + 1) % 4), payload);
    }
    simulation.run();
    return log;
  };
  EXPECT_EQ(delivery_trace(3), delivery_trace(3));
}

}  // namespace
}  // namespace stabl
