// Shared helpers for the per-chain protocol tests: build a cluster, attach
// simple clients, run for a while, and check cross-replica invariants.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chain/hash.hpp"
#include "chain/node.hpp"
#include "core/client.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace stabl::testing {

struct Harness {
  explicit Harness(std::uint64_t seed = 11)
      : simulation(seed), network(simulation, net::LatencyConfig{}) {}

  /// Attach `count` clients at `tps` each, one per entry node, sending
  /// until `stop_at`. Call after the nodes vector is filled.
  void add_clients(std::size_t count, double tps, sim::Time stop_at,
                   int fanout = 1) {
    const std::size_t entries = std::min<std::size_t>(count, nodes.size());
    for (std::size_t i = 0; i < count; ++i) {
      core::ClientConfig config;
      config.id = static_cast<net::NodeId>(nodes.size() + i);
      config.account = static_cast<chain::AccountId>(i);
      config.recipient = static_cast<chain::AccountId>(1000 + i);
      config.tps = tps;
      config.stop_at = stop_at;
      config.tx_seed = chain::mix64(99);
      for (int k = 0; k < fanout; ++k) {
        config.endpoints.push_back(static_cast<net::NodeId>(
            (i + static_cast<std::size_t>(k)) % entries));
      }
      clients.push_back(std::make_unique<core::ClientMachine>(
          simulation, network, config));
    }
  }

  void start_all() {
    for (auto& node : nodes) node->start();
    for (auto& client : clients) client->start();
  }

  [[nodiscard]] std::uint64_t total_client_committed() const {
    std::uint64_t total = 0;
    for (const auto& client : clients) total += client->committed();
    return total;
  }

  [[nodiscard]] std::uint64_t total_client_submitted() const {
    std::uint64_t total = 0;
    for (const auto& client : clients) total += client->submitted();
    return total;
  }

  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  std::vector<std::unique_ptr<core::ClientMachine>> clients;
};

/// Every pair of ledgers must agree block-by-block on their common prefix
/// (no conflicting commits); returns via gtest assertions.
inline void expect_prefix_consistent(const Harness& harness) {
  const auto block_eq = [](const chain::Block& a, const chain::Block& b) {
    if (a.txs.size() != b.txs.size()) return false;
    for (std::size_t i = 0; i < a.txs.size(); ++i) {
      if (a.txs[i].id != b.txs[i].id) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < harness.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < harness.nodes.size(); ++j) {
      const auto& a = harness.nodes[i]->ledger().blocks();
      const auto& b = harness.nodes[j]->ledger().blocks();
      const std::size_t common = std::min(a.size(), b.size());
      for (std::size_t h = 0; h < common; ++h) {
        ASSERT_TRUE(block_eq(a[h], b[h]))
            << "ledger divergence between node " << i << " and node " << j
            << " at height " << h;
      }
    }
  }
}

/// No transaction may be executed twice on any single replica.
inline void expect_no_double_execution(const Harness& harness) {
  for (const auto& node : harness.nodes) {
    std::unordered_set<chain::TxId> seen;
    for (const chain::Block& block : node->ledger().blocks()) {
      for (const chain::Transaction& tx : block.txs) {
        ASSERT_TRUE(seen.insert(tx.id).second)
            << "tx " << tx.id << " committed twice on node "
            << node->node_id();
      }
    }
  }
}

}  // namespace stabl::testing
