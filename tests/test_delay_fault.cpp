// Delay-injection fault tests (tc-netem style): messages arrive late
// rather than never. The paper observed Solana's generalized crash "after
// an injection of transient communication delays" and concluded that
// Avalanche "stops working when some messages arrive 2 minutes late";
// Redbelly and Algorand treat heavy delays like a partition and recover.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------------- rule mechanics

struct Probe final : net::Endpoint {
  std::vector<sim::Time> arrivals;
  sim::Simulation* simulation = nullptr;
  void deliver(const net::Envelope&) override {
    arrivals.push_back(simulation->now());
  }
  [[nodiscard]] bool endpoint_alive() const override { return true; }
};

TEST(DelayRule, AddsLatencyBothDirections) {
  sim::Simulation simulation(1);
  net::Network network(simulation, net::LatencyConfig{});
  Probe probes[2];
  for (auto& probe : probes) probe.simulation = &simulation;
  network.attach(0, &probes[0]);
  network.attach(1, &probes[1]);
  network.add_delay({0}, {1}, sim::sec(5));
  auto payload = std::make_shared<const net::ControlPayload>(
      net::ControlPayload::Kind::kPing);
  network.send(0, 1, payload);
  network.send(1, 0, payload);
  simulation.run();
  ASSERT_EQ(probes[1].arrivals.size(), 1u);
  ASSERT_EQ(probes[0].arrivals.size(), 1u);
  EXPECT_GT(probes[1].arrivals[0], sim::sec(5));
  EXPECT_GT(probes[0].arrivals[0], sim::sec(5));
  // Delay rules do not drop.
  EXPECT_TRUE(network.permitted(0, 1));
  EXPECT_EQ(network.stats().dropped_partition, 0u);
}

TEST(DelayRule, RemovalRestoresBaseLatency) {
  sim::Simulation simulation(1);
  net::Network network(simulation, net::LatencyConfig{});
  Probe probe;
  probe.simulation = &simulation;
  Probe other;
  other.simulation = &simulation;
  network.attach(0, &other);
  network.attach(1, &probe);
  const net::RuleId rule = network.add_delay({0}, {1}, sim::sec(5));
  network.remove_rule(rule);
  network.send(0, 1,
               std::make_shared<const net::ControlPayload>(
                   net::ControlPayload::Kind::kPing));
  simulation.run();
  ASSERT_EQ(probe.arrivals.size(), 1u);
  EXPECT_LT(probe.arrivals[0], sim::ms(100));
}

TEST(DelayRule, StacksAcrossRules) {
  sim::Simulation simulation(1);
  net::Network network(simulation, net::LatencyConfig{});
  network.add_delay({0}, {1}, sim::sec(2));
  network.add_delay({0}, {1}, sim::sec(3));
  EXPECT_EQ(network.extra_delay(0, 1), sim::sec(5));
  EXPECT_EQ(network.extra_delay(1, 0), sim::sec(5));
  EXPECT_EQ(network.extra_delay(0, 2), sim::Duration::zero());
}

// ----------------------------------------------- chain-level behaviour

ExperimentConfig delay_config(ChainKind chain) {
  ExperimentConfig config;
  config.chain = chain;
  config.fault = FaultType::kDelay;
  config.duration = sim::sec(400);
  config.inject_at = sim::sec(133);
  config.recover_at = sim::sec(266);
  return config;
}

TEST(DelayFault, SolanaCrashesUnderTransientDelays) {
  // "we noticed that all the nodes of Solana crash after an injection of
  // transient communication delays" (paper §2): delayed votes stop
  // rooting, and the EAH integration point panics every validator.
  const ExperimentResult result = run_experiment(delay_config(
      ChainKind::kSolana));
  EXPECT_FALSE(result.live_at_end);
  EXPECT_LT(result.committed, 30000u);
}

TEST(DelayFault, AvalancheStarvesUnderTwoMinuteDelays) {
  const ExperimentResult result = run_experiment(delay_config(
      ChainKind::kAvalanche));
  EXPECT_FALSE(result.live_at_end)
      << "Avalanche stops working when some messages arrive 2 minutes late";
}

TEST(DelayFault, RedbellyRecoversLikeFromAPartition) {
  const ExperimentResult result = run_experiment(delay_config(
      ChainKind::kRedbelly));
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, 70000u);
  // Recovery can land exactly at the heal instant: messages delayed by
  // 120 s from the fault onset arrive just as the rule lifts.
  EXPECT_GE(result.recovery_seconds, 0.0);
}

}  // namespace
}  // namespace stabl::core
