// Tests for the client machines (including the secure client's
// wait-for-all-endpoints semantics) and the fault-injecting observers.
#include <gtest/gtest.h>

#include "chain/node.hpp"
#include "core/client.hpp"
#include "core/observer.hpp"

namespace stabl::core {
namespace {

/// Node stub that acknowledges every submission after a fixed delay.
class AckNode final : public chain::BlockchainNode {
 public:
  AckNode(sim::Simulation& simulation, net::Network& network,
          chain::NodeConfig config, sim::Duration ack_delay)
      : BlockchainNode(simulation, network, config), delay_(ack_delay) {}

  int submissions = 0;

 protected:
  void start_protocol() override {}
  void on_app_message(const net::Envelope&) override {}
  void accept_transaction(const chain::Transaction& tx) override {
    ++submissions;
    // Commit solo after the delay (no consensus in this stub).
    set_timer(delay_, [this, tx] { commit_block({tx}, node_id()); });
  }

 private:
  sim::Duration delay_;
};

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : simulation(5), network(simulation, net::LatencyConfig{}) {}

  AckNode* add_node(net::NodeId id, sim::Duration ack_delay) {
    chain::NodeConfig config;
    config.id = id;
    config.n = 3;
    config.network_seed = 1;
    nodes.push_back(std::make_unique<AckNode>(simulation, network, config,
                                              ack_delay));
    nodes.back()->start();
    return nodes.back().get();
  }

  ClientMachine* add_client(std::vector<net::NodeId> endpoints, double tps,
                            sim::Time stop_at) {
    ClientConfig config;
    config.id = 100 + static_cast<net::NodeId>(clients.size());
    config.account = static_cast<chain::AccountId>(clients.size());
    config.recipient = 999;
    config.endpoints = std::move(endpoints);
    config.tps = tps;
    config.stop_at = stop_at;
    clients.push_back(
        std::make_unique<ClientMachine>(simulation, network, config));
    clients.back()->start();
    return clients.back().get();
  }

  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<AckNode>> nodes;
  std::vector<std::unique_ptr<ClientMachine>> clients;
};

TEST_F(ClientTest, SubmitsAtConfiguredRate) {
  add_node(0, sim::ms(10));
  auto* client = add_client({0}, 40.0, sim::sec(10));
  simulation.run_until(sim::sec(10));
  // 40 TPS for ~9.5s of active sending.
  EXPECT_NEAR(static_cast<double>(client->submitted()), 380.0, 5.0);
}

TEST_F(ClientTest, RecordsLatencies) {
  add_node(0, sim::ms(500));
  auto* client = add_client({0}, 10.0, sim::sec(5));
  simulation.run_until(sim::sec(7));
  EXPECT_EQ(client->committed(), client->submitted());
  ASSERT_FALSE(client->latencies().empty());
  for (const double latency : client->latencies()) {
    EXPECT_GT(latency, 0.5);
    EXPECT_LT(latency, 0.6);
  }
}

TEST_F(ClientTest, NoncesIncreaseSequentially) {
  auto* node = add_node(0, sim::ms(1));
  add_client({0}, 20.0, sim::sec(5));
  simulation.run_until(sim::sec(6));
  EXPECT_EQ(node->accounts().next_nonce(0),
            static_cast<std::uint64_t>(node->submissions));
}

TEST_F(ClientTest, SecureClientWaitsForSlowestEndpoint) {
  add_node(0, sim::ms(10));
  add_node(1, sim::ms(10));
  add_node(2, sim::ms(900));  // the slow replica dominates
  auto* client = add_client({0, 1, 2}, 10.0, sim::sec(4));
  simulation.run_until(sim::sec(6));
  EXPECT_GT(client->committed(), 0u);
  for (const double latency : client->latencies()) {
    EXPECT_GT(latency, 0.9) << "committed only after ALL endpoints answer";
  }
}

TEST_F(ClientTest, SecureClientCountsEachTransactionOnce) {
  add_node(0, sim::ms(10));
  add_node(1, sim::ms(20));
  auto* client = add_client({0, 1}, 10.0, sim::sec(4));
  simulation.run_until(sim::sec(6));
  EXPECT_EQ(client->committed(), client->submitted());
  EXPECT_EQ(client->latencies().size(), client->committed());
}

TEST_F(ClientTest, StopsSubmittingAtDeadline) {
  add_node(0, sim::ms(1));
  auto* client = add_client({0}, 40.0, sim::sec(2));
  simulation.run_until(sim::sec(10));
  const auto submitted = client->submitted();
  EXPECT_LE(submitted, 80u);
  EXPECT_GE(submitted, 50u);
}

// ----------------------------------------------------------------- faults

class ObserverTest : public ::testing::Test {
 protected:
  ObserverTest() : simulation(5), network(simulation, net::LatencyConfig{}) {
    for (net::NodeId id = 0; id < 4; ++id) {
      chain::NodeConfig config;
      config.id = id;
      config.n = 4;
      config.network_seed = 1;
      nodes.push_back(std::make_unique<AckNode>(simulation, network, config,
                                                sim::ms(1)));
      nodes.back()->start();
      pointers.push_back(nodes.back().get());
    }
  }

  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<AckNode>> nodes;
  std::vector<chain::BlockchainNode*> pointers;
};

TEST_F(ObserverTest, CrashKillsTargetsPermanently) {
  Observers observers(simulation, network, pointers);
  FaultPlan plan;
  plan.type = FaultType::kCrash;
  plan.targets = {2, 3};
  plan.inject_at = sim::sec(1);
  observers.arm(plan);
  simulation.run_until(sim::sec(5));
  EXPECT_TRUE(nodes[0]->alive());
  EXPECT_TRUE(nodes[1]->alive());
  EXPECT_FALSE(nodes[2]->alive());
  EXPECT_FALSE(nodes[3]->alive());
}

TEST_F(ObserverTest, TransientRestartsTargets) {
  Observers observers(simulation, network, pointers);
  FaultPlan plan;
  plan.type = FaultType::kTransient;
  plan.targets = {1};
  plan.inject_at = sim::sec(1);
  plan.recover_at = sim::sec(3);
  observers.arm(plan);
  simulation.run_until(sim::sec(2));
  EXPECT_FALSE(nodes[1]->alive());
  simulation.run_until(sim::sec(4));
  EXPECT_TRUE(nodes[1]->alive());
  EXPECT_EQ(nodes[1]->restarts(), 1);
}

TEST_F(ObserverTest, PartitionInstallsAndRemovesRules) {
  Observers observers(simulation, network, pointers);
  FaultPlan plan;
  plan.type = FaultType::kPartition;
  plan.targets = {2, 3};
  plan.inject_at = sim::sec(1);
  plan.recover_at = sim::sec(3);
  observers.arm(plan);
  simulation.run_until(sim::sec(2));
  EXPECT_FALSE(network.permitted(0, 2));
  EXPECT_FALSE(network.permitted(3, 1));
  EXPECT_TRUE(network.permitted(0, 1));
  EXPECT_TRUE(network.permitted(2, 3));
  simulation.run_until(sim::sec(4));
  EXPECT_TRUE(network.permitted(0, 2));
}

TEST_F(ObserverTest, NoneAndSecureClientInjectNothing) {
  Observers observers(simulation, network, pointers);
  FaultPlan plan;
  plan.type = FaultType::kSecureClient;
  plan.targets = {0, 1, 2, 3};
  observers.arm(plan);
  simulation.run_until(sim::sec(5));
  for (const auto& node : nodes) EXPECT_TRUE(node->alive());
}

TEST(FaultType, Names) {
  EXPECT_EQ(to_string(FaultType::kCrash), "crash");
  EXPECT_EQ(to_string(FaultType::kTransient), "transient");
  EXPECT_EQ(to_string(FaultType::kPartition), "partition");
  EXPECT_EQ(to_string(FaultType::kNone), "none");
  EXPECT_EQ(to_string(FaultType::kSecureClient), "secure-client");
}

}  // namespace
}  // namespace stabl::core
