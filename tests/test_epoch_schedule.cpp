// Tests for Solana's epoch geometry — the warm-up progression that puts
// the paper's fault window inside a 256-slot epoch, and the EAH window
// positions within an epoch.
#include "chains/solana/epoch_schedule.hpp"

#include <gtest/gtest.h>

namespace stabl::solana {
namespace {

TEST(EpochSchedule, WarmupDoublesFrom32) {
  EpochSchedule schedule(/*warmup=*/true);
  EXPECT_EQ(schedule.epoch_of_slot(0).slots, 32u);
  EXPECT_EQ(schedule.epoch_of_slot(31).slots, 32u);
  EXPECT_EQ(schedule.epoch_of_slot(32).slots, 64u);
  EXPECT_EQ(schedule.epoch_of_slot(95).slots, 64u);
  EXPECT_EQ(schedule.epoch_of_slot(96).slots, 128u);
  EXPECT_EQ(schedule.epoch_of_slot(224).slots, 256u);
  EXPECT_EQ(schedule.epoch_of_slot(480).slots, 512u);
}

TEST(EpochSchedule, WarmupEpochBoundaries) {
  EpochSchedule schedule(true);
  const EpochInfo epoch3 = schedule.epoch_of_slot(300);
  EXPECT_EQ(epoch3.epoch, 3u);
  EXPECT_EQ(epoch3.first_slot, 224u);
  EXPECT_EQ(epoch3.slots, 256u);
  EXPECT_EQ(epoch3.last_slot(), 479u);
}

TEST(EpochSchedule, PaperFaultWindowLandsInShortEpoch) {
  // t = 133 s at 400 ms slots is slot 332: inside the 256-slot epoch 3,
  // i.e. "when the number of slots per epoch is still under 360".
  EpochSchedule schedule(true);
  const EpochInfo epoch = schedule.epoch_of_slot(332);
  EXPECT_EQ(epoch.epoch, 3u);
  EXPECT_LT(epoch.slots, 360u);
}

TEST(EpochSchedule, EahWindowQuarters) {
  EpochSchedule schedule(true);
  const EpochInfo epoch = schedule.epoch_of_slot(300);  // 224 + 256
  EXPECT_EQ(epoch.eah_start_slot(), 224u + 64u);
  EXPECT_EQ(epoch.eah_stop_slot(), 224u + 192u);
}

TEST(EpochSchedule, SizesCapAtNormal) {
  EpochSchedule schedule(true, 8192);
  // Warm-up: 32+64+128+256+512+1024+2048+4096 = 8160; epoch 8 is full.
  const EpochInfo epoch = schedule.epoch_of_slot(8160);
  EXPECT_EQ(epoch.slots, 8192u);
  const EpochInfo next = schedule.epoch_of_slot(8160 + 8192);
  EXPECT_EQ(next.slots, 8192u);
  EXPECT_EQ(next.epoch, epoch.epoch + 1);
}

TEST(EpochSchedule, NoWarmupIsUniform) {
  EpochSchedule schedule(/*warmup=*/false, 8192);
  EXPECT_EQ(schedule.epoch_of_slot(0).slots, 8192u);
  EXPECT_EQ(schedule.epoch_of_slot(8191).epoch, 0u);
  EXPECT_EQ(schedule.epoch_of_slot(8192).epoch, 1u);
  EXPECT_EQ(schedule.epoch_of_slot(20000).first_slot, 16384u);
}

TEST(EpochSchedule, ContiguousCoverage) {
  // Every slot belongs to exactly one epoch and boundaries are seamless.
  EpochSchedule schedule(true, 1024);
  std::uint64_t expected_first = 0;
  std::uint64_t epoch = 0;
  for (std::uint64_t slot = 0; slot < 5000; ++slot) {
    const EpochInfo info = schedule.epoch_of_slot(slot);
    ASSERT_LE(info.first_slot, slot);
    ASSERT_GE(info.last_slot(), slot);
    if (slot == info.first_slot) {
      ASSERT_EQ(info.first_slot, expected_first);
      ASSERT_EQ(info.epoch, epoch);
      expected_first += info.slots;
      ++epoch;
    }
  }
}

}  // namespace
}  // namespace stabl::solana
