// Tests for sim-time tracing: sink recording, the Perfetto trace_event
// export and its strict validator, and the harness-wide determinism
// contract — attaching a TraceSink and a MetricsRegistry to a faulted
// experiment must leave every deterministic report byte-identical, and the
// trace itself must be a deterministic function of the run.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/chaos.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/serialize.hpp"
#include "sim/trace.hpp"

namespace stabl::core {
namespace {

// ---------------------------------------------------------------- sink

TEST(TraceSink, RecordsEventsInEmissionOrder) {
  sim::TraceSink sink;
  sink.set_track_name(0, "node 0");
  sink.begin(0, sim::seconds(1.0), "round", "consensus", "\"round\":7");
  sink.instant(0, sim::seconds(1.5), "commit", "chain");
  sink.end(0, sim::seconds(2.0), "round");
  sink.counter(sim::seconds(2.0), "depth", 3.5);
  sink.async_begin(1, sim::seconds(0.5), 42, "txn", "txn");
  sink.async_end(1, sim::seconds(2.5), 42, "txn", "txn");

  ASSERT_EQ(sink.size(), 6u);
  EXPECT_EQ(sink.events()[0].phase, sim::TraceSink::Phase::kBegin);
  EXPECT_EQ(sink.events()[0].args, "\"round\":7");
  EXPECT_EQ(sink.events()[1].phase, sim::TraceSink::Phase::kInstant);
  EXPECT_EQ(sink.events()[3].value, 3.5);
  EXPECT_EQ(sink.events()[4].id, 42u);
  EXPECT_EQ(sink.track_names().at(0), "node 0");

  sink.clear();
  EXPECT_TRUE(sink.empty());
}

TEST(TraceSink, NameClusterTracksLabelsNodesClientsAndFaults) {
  sim::TraceSink sink;
  name_cluster_tracks(sink, 3, 2);
  EXPECT_EQ(sink.track_names().at(0), "node 0");
  EXPECT_EQ(sink.track_names().at(2), "node 2");
  // Clients are numbered by client index; their tids continue after the
  // nodes (client i lives on tid n_nodes + i).
  EXPECT_EQ(sink.track_names().at(3), "client 0");
  EXPECT_EQ(sink.track_names().at(4), "client 1");
  EXPECT_EQ(sink.track_names().at(kFaultsTrack), "faults");
}

// -------------------------------------------------------------- export

TEST(TraceExport, JsonValidatesAndCountsMatchTheSink) {
  sim::TraceSink sink;
  name_cluster_tracks(sink, 2, 1);
  sink.begin(0, sim::seconds(1.0), "round", "consensus", "\"round\":1");
  sink.instant(1, sim::seconds(1.2), "commit", "chain", "\"height\":3");
  sink.end(0, sim::seconds(1.4), "round");
  sink.counter(sim::seconds(2.0), "depth", 1.25);
  sink.async_begin(2, sim::seconds(0.1), 9, "txn", "txn", "\"nonce\":0");
  sink.async_end(2, sim::seconds(2.1), 9, "txn", "txn");
  sink.instant(kFaultsTrack, sim::seconds(1.0), "inject", "fault");

  const std::string json = trace_to_json(sink);
  const TraceStats stats = validate_trace_json(json);
  EXPECT_EQ(stats.metadata, 4u);  // 2 nodes + 1 client + faults
  EXPECT_EQ(stats.events, 7u);
  EXPECT_EQ(stats.spans, 1u);
  EXPECT_EQ(stats.instants, 2u);
  EXPECT_EQ(stats.counters, 1u);
  EXPECT_EQ(stats.asyncs, 2u);
}

TEST(TraceExport, ValidatorRejectsGarbageAndUnbalancedSpans) {
  EXPECT_THROW(validate_trace_json(""), std::invalid_argument);
  EXPECT_THROW(validate_trace_json("{\"traceEvents\":}"),
               std::invalid_argument);

  sim::TraceSink unbalanced;
  unbalanced.begin(0, sim::seconds(1.0), "round", "consensus");
  EXPECT_THROW(validate_trace_json(trace_to_json(unbalanced)),
               std::invalid_argument);

  sim::TraceSink crossed;
  crossed.end(0, sim::seconds(1.0), "round");
  EXPECT_THROW(validate_trace_json(trace_to_json(crossed)),
               std::invalid_argument);
}

TEST(TraceExport, EmptySinkStillProducesAValidDocument) {
  sim::TraceSink sink;
  const TraceStats stats = validate_trace_json(trace_to_json(sink));
  EXPECT_EQ(stats.events, 0u);
}

// -------------------------------------------------- experiment contract

ExperimentConfig faulted_cell() {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.fault = FaultType::kTransient;
  config.seed = 11;
  config.duration = sim::sec(60);
  config.inject_at = sim::sec(20);
  config.recover_at = sim::sec(40);
  return config;
}

TEST(TraceDeterminism, TracedRunIsByteIdenticalToUntraced) {
  const SensitivityRun plain = run_sensitivity(faulted_cell());

  ExperimentConfig traced_config = faulted_cell();
  sim::TraceSink sink;
  MetricsRegistry metrics;
  traced_config.trace = &sink;
  traced_config.metrics = &metrics;
  const SensitivityRun traced = run_sensitivity(traced_config);

  // The hard constraint: observability must not perturb RNG draws or
  // event ordering, so every deterministic report matches byte for byte.
  EXPECT_EQ(to_json(faulted_cell().chain, faulted_cell().fault, traced),
            to_json(faulted_cell().chain, faulted_cell().fault, plain));
  EXPECT_EQ(
      summary_csv_row(faulted_cell().chain, faulted_cell().fault, traced),
      summary_csv_row(faulted_cell().chain, faulted_cell().fault, plain));

  // And the run actually produced a rich, schema-valid timeline.
  const TraceStats stats = validate_trace_json(trace_to_json(sink));
  EXPECT_GT(stats.events, 100u);
  EXPECT_GT(stats.counters, 0u);   // metrics sampled into the trace
  EXPECT_GT(stats.asyncs, 0u);     // txn lifecycle spans
  EXPECT_GE(stats.tracks, 2u);
  EXPECT_FALSE(metrics.sample_times().empty());
  EXPECT_FALSE(metrics.series().empty());
}

TEST(TraceDeterminism, TraceAndMetricsBytesAreReproducible) {
  auto capture = [](std::string& trace_json, std::string& metrics_json) {
    ExperimentConfig config = faulted_cell();
    sim::TraceSink sink;
    MetricsRegistry metrics;
    config.trace = &sink;
    config.metrics = &metrics;
    run_sensitivity(config);
    trace_json = trace_to_json(sink);
    metrics_json = metrics.to_json();
  };
  std::string trace_a, metrics_a, trace_b, metrics_b;
  capture(trace_a, metrics_a);
  capture(trace_b, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  // The metrics document round-trips byte-identically, like repro files.
  EXPECT_EQ(metrics_from_json(metrics_a).to_json(), metrics_a);
}

// ------------------------------------------------------- chaos repros

TEST(TraceChaos, ReproTracesAreDeterministicAndValidate) {
  const auto campaign = [] {
    ChaosCampaignConfig config;
    config.chains = {ChainKind::kRedbelly};
    config.trials_per_chain = 2;
    config.seed = 7;
    config.base.duration = sim::sec(60);
    config.trace_repros = true;
    return config;
  };
  const ChaosCampaignResult first = run_chaos_campaign(campaign());
  const ChaosCampaignResult second = run_chaos_campaign(campaign());
  EXPECT_EQ(first.to_json(), second.to_json());
  ASSERT_EQ(first.trials.size(), second.trials.size());
  for (std::size_t i = 0; i < first.trials.size(); ++i) {
    const ChaosTrial& trial = first.trials[i];
    EXPECT_EQ(trial.repro_trace, second.trials[i].repro_trace);
    if (trial.report.violated()) {
      ASSERT_FALSE(trial.repro_trace.empty());
      EXPECT_GT(validate_trace_json(trial.repro_trace).events, 0u);
    } else {
      EXPECT_TRUE(trial.repro_trace.empty());
    }
  }
}

}  // namespace
}  // namespace stabl::core
