// Tests for sim-time tracing: sink recording, the Perfetto trace_event
// export and its strict validator, the harness-wide determinism contract —
// attaching a TraceSink and a MetricsRegistry to a faulted experiment must
// leave every deterministic report byte-identical, and the trace itself
// must be a deterministic function of the run — and the transaction
// lifecycle recorder (sim/lifecycle.hpp): span causality, the carry-forward
// clamp's telescoping invariant, resubmit-hop linkage to the clients'
// resilience stats, and the same byte-identity contract on a faulted
// nversion_* meta-chain run.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/chaos.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/serialize.hpp"
#include "sim/lifecycle.hpp"
#include "sim/trace.hpp"

namespace stabl::core {
namespace {

// ---------------------------------------------------------------- sink

TEST(TraceSink, RecordsEventsInEmissionOrder) {
  sim::TraceSink sink;
  sink.set_track_name(0, "node 0");
  sink.begin(0, sim::seconds(1.0), "round", "consensus", "\"round\":7");
  sink.instant(0, sim::seconds(1.5), "commit", "chain");
  sink.end(0, sim::seconds(2.0), "round");
  sink.counter(sim::seconds(2.0), "depth", 3.5);
  sink.async_begin(1, sim::seconds(0.5), 42, "txn", "txn");
  sink.async_end(1, sim::seconds(2.5), 42, "txn", "txn");

  ASSERT_EQ(sink.size(), 6u);
  EXPECT_EQ(sink.events()[0].phase, sim::TraceSink::Phase::kBegin);
  EXPECT_EQ(sink.events()[0].args, "\"round\":7");
  EXPECT_EQ(sink.events()[1].phase, sim::TraceSink::Phase::kInstant);
  EXPECT_EQ(sink.events()[3].value, 3.5);
  EXPECT_EQ(sink.events()[4].id, 42u);
  EXPECT_EQ(sink.track_names().at(0), "node 0");

  sink.clear();
  EXPECT_TRUE(sink.empty());
}

TEST(TraceSink, NameClusterTracksLabelsNodesClientsAndFaults) {
  sim::TraceSink sink;
  name_cluster_tracks(sink, 3, 2);
  EXPECT_EQ(sink.track_names().at(0), "node 0");
  EXPECT_EQ(sink.track_names().at(2), "node 2");
  // Clients are numbered by client index; their tids continue after the
  // nodes (client i lives on tid n_nodes + i).
  EXPECT_EQ(sink.track_names().at(3), "client 0");
  EXPECT_EQ(sink.track_names().at(4), "client 1");
  EXPECT_EQ(sink.track_names().at(kFaultsTrack), "faults");
}

// -------------------------------------------------------------- export

TEST(TraceExport, JsonValidatesAndCountsMatchTheSink) {
  sim::TraceSink sink;
  name_cluster_tracks(sink, 2, 1);
  sink.begin(0, sim::seconds(1.0), "round", "consensus", "\"round\":1");
  sink.instant(1, sim::seconds(1.2), "commit", "chain", "\"height\":3");
  sink.end(0, sim::seconds(1.4), "round");
  sink.counter(sim::seconds(2.0), "depth", 1.25);
  sink.async_begin(2, sim::seconds(0.1), 9, "txn", "txn", "\"nonce\":0");
  sink.async_end(2, sim::seconds(2.1), 9, "txn", "txn");
  sink.instant(kFaultsTrack, sim::seconds(1.0), "inject", "fault");

  const std::string json = trace_to_json(sink);
  const TraceStats stats = validate_trace_json(json);
  EXPECT_EQ(stats.metadata, 4u);  // 2 nodes + 1 client + faults
  EXPECT_EQ(stats.events, 7u);
  EXPECT_EQ(stats.spans, 1u);
  EXPECT_EQ(stats.instants, 2u);
  EXPECT_EQ(stats.counters, 1u);
  EXPECT_EQ(stats.asyncs, 2u);
}

TEST(TraceExport, ValidatorRejectsGarbageAndUnbalancedSpans) {
  EXPECT_THROW(validate_trace_json(""), std::invalid_argument);
  EXPECT_THROW(validate_trace_json("{\"traceEvents\":}"),
               std::invalid_argument);

  sim::TraceSink unbalanced;
  unbalanced.begin(0, sim::seconds(1.0), "round", "consensus");
  EXPECT_THROW(validate_trace_json(trace_to_json(unbalanced)),
               std::invalid_argument);

  sim::TraceSink crossed;
  crossed.end(0, sim::seconds(1.0), "round");
  EXPECT_THROW(validate_trace_json(trace_to_json(crossed)),
               std::invalid_argument);
}

TEST(TraceExport, EmptySinkStillProducesAValidDocument) {
  sim::TraceSink sink;
  const TraceStats stats = validate_trace_json(trace_to_json(sink));
  EXPECT_EQ(stats.events, 0u);
}

// -------------------------------------------------- experiment contract

ExperimentConfig faulted_cell() {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.fault = FaultType::kTransient;
  config.seed = 11;
  config.duration = sim::sec(60);
  config.inject_at = sim::sec(20);
  config.recover_at = sim::sec(40);
  return config;
}

TEST(TraceDeterminism, TracedRunIsByteIdenticalToUntraced) {
  const SensitivityRun plain = run_sensitivity(faulted_cell());

  ExperimentConfig traced_config = faulted_cell();
  sim::TraceSink sink;
  MetricsRegistry metrics;
  traced_config.trace = &sink;
  traced_config.metrics = &metrics;
  const SensitivityRun traced = run_sensitivity(traced_config);

  // The hard constraint: observability must not perturb RNG draws or
  // event ordering, so every deterministic report matches byte for byte.
  EXPECT_EQ(to_json(faulted_cell().chain, faulted_cell().fault, traced),
            to_json(faulted_cell().chain, faulted_cell().fault, plain));
  EXPECT_EQ(
      summary_csv_row(faulted_cell().chain, faulted_cell().fault, traced),
      summary_csv_row(faulted_cell().chain, faulted_cell().fault, plain));

  // And the run actually produced a rich, schema-valid timeline.
  const TraceStats stats = validate_trace_json(trace_to_json(sink));
  EXPECT_GT(stats.events, 100u);
  EXPECT_GT(stats.counters, 0u);   // metrics sampled into the trace
  EXPECT_GT(stats.asyncs, 0u);     // txn lifecycle spans
  EXPECT_GE(stats.tracks, 2u);
  EXPECT_FALSE(metrics.sample_times().empty());
  EXPECT_FALSE(metrics.series().empty());
}

TEST(TraceDeterminism, TraceAndMetricsBytesAreReproducible) {
  auto capture = [](std::string& trace_json, std::string& metrics_json) {
    ExperimentConfig config = faulted_cell();
    sim::TraceSink sink;
    MetricsRegistry metrics;
    config.trace = &sink;
    config.metrics = &metrics;
    run_sensitivity(config);
    trace_json = trace_to_json(sink);
    metrics_json = metrics.to_json();
  };
  std::string trace_a, metrics_a, trace_b, metrics_b;
  capture(trace_a, metrics_a);
  capture(trace_b, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  // The metrics document round-trips byte-identically, like repro files.
  EXPECT_EQ(metrics_from_json(metrics_a).to_json(), metrics_a);
}

// --------------------------------------------------- lifecycle recorder

TEST(Lifecycle, RecorderMarksAreFirstReachAndHopsAccumulate) {
  sim::LifecycleRecorder recorder;
  recorder.mark(7, sim::TxStage::kSubmitted, sim::seconds(1.0));
  recorder.mark(7, sim::TxStage::kEntryReceived, sim::seconds(1.5));
  // A resubmission re-enters the node later; the original time wins.
  recorder.mark(7, sim::TxStage::kEntryReceived, sim::seconds(9.0));
  recorder.hop(7, sim::TxHop::kResubmit);
  recorder.hop(7, sim::TxHop::kResubmit);

  const sim::TxLifecycle* record = recorder.find(7);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->at(sim::TxStage::kEntryReceived), sim::seconds(1.5));
  EXPECT_EQ(record->hops[static_cast<std::size_t>(sim::TxHop::kResubmit)],
            2u);
  EXPECT_EQ(record->deepest(), sim::TxStage::kEntryReceived);
  EXPECT_EQ(recorder.find(8), nullptr);
}

TEST(Lifecycle, StageTimesClampCarriesForwardAndTelescopes) {
  sim::TxLifecycle record;
  record.stage_at[0] = sim::seconds(1.0);  // submitted
  record.stage_at[1] = sim::seconds(2.0);  // entry received
  // queued/proposed never marked (e.g. fast-path commit notification);
  // committed recorded EARLIER than entry on another replica's clock
  // ordering is impossible, but a skipped stage must carry forward.
  record.stage_at[4] = sim::seconds(4.0);  // committed
  record.stage_at[5] = sim::seconds(5.0);  // confirmed

  const auto times = sim::stage_times(record);
  EXPECT_EQ(times[1], sim::seconds(2.0));
  EXPECT_EQ(times[2], sim::seconds(2.0));  // carried from entry
  EXPECT_EQ(times[3], sim::seconds(2.0));
  EXPECT_EQ(times[4], sim::seconds(4.0));
  EXPECT_EQ(times[5], sim::seconds(5.0));
  // Telescoping is exact in Time arithmetic.
  sim::Duration total{};
  for (std::size_t i = 0; i + 1 < sim::kNumTxStages; ++i) {
    total = total + (times[i + 1] - times[i]);
  }
  EXPECT_EQ(total, times[sim::kNumTxStages - 1] - times[0]);
}

TEST(Lifecycle, FaultedRunRecordsCausalSpansForEveryTransaction) {
  ExperimentConfig config = faulted_cell();
  sim::LifecycleRecorder recorder;
  config.lifecycle = &recorder;
  const ExperimentResult result = run_experiment(config);

  ASSERT_FALSE(recorder.empty());
  // Every submitted transaction has a record, and every confirmed one
  // reached kConfirmed — the recorder's view matches the client's.
  EXPECT_EQ(recorder.size(), result.submitted);
  std::uint64_t confirmed = 0;
  for (const sim::TxLifecycle& record : recorder.records()) {
    ASSERT_TRUE(record.reached(sim::TxStage::kSubmitted));
    // Raw marks are causal: no stage is reached before submission.
    for (std::size_t s = 1; s < sim::kNumTxStages; ++s) {
      if (record.stage_at[s] == sim::kStageUnset) continue;
      EXPECT_GE(record.stage_at[s], record.stage_at[0]);
    }
    // Entry -> queued -> proposed -> committed are monotone raw: each is
    // marked by a component that already saw the previous stage.
    for (std::size_t s = 2; s <= 4; ++s) {
      if (record.stage_at[s] == sim::kStageUnset ||
          record.stage_at[s - 1] == sim::kStageUnset) {
        continue;
      }
      EXPECT_GE(record.stage_at[s], record.stage_at[s - 1]);
    }
    if (!record.reached(sim::TxStage::kConfirmed)) continue;
    ++confirmed;
    // Clamped times are monotone and telescope exactly to the
    // client-observed commit latency.
    const auto times = sim::stage_times(record);
    sim::Duration total{};
    for (std::size_t i = 0; i + 1 < sim::kNumTxStages; ++i) {
      EXPECT_GE(times[i + 1], times[i]);
      total = total + (times[i + 1] - times[i]);
    }
    EXPECT_EQ(total, times[sim::kNumTxStages - 1] - times[0]);
  }
  EXPECT_EQ(confirmed, result.committed);
  EXPECT_GT(confirmed, 0u);
}

TEST(Lifecycle, ResubmitHopsMatchTheClientsResilienceStats) {
  // Crash the entry nodes so resilient clients must resubmit and fail
  // over; the recorder's hop counters must agree with the clients' own
  // bookkeeping.
  ExperimentConfig config = faulted_cell();
  config.fault = FaultType::kCrash;
  config.fault_targets = {0};
  config.resilience.enabled = true;
  sim::LifecycleRecorder recorder;
  config.lifecycle = &recorder;
  const ExperimentResult result = run_experiment(config);

  std::uint64_t resubmits = 0;
  std::uint64_t failovers = 0;
  for (const sim::TxLifecycle& record : recorder.records()) {
    resubmits +=
        record.hops[static_cast<std::size_t>(sim::TxHop::kResubmit)];
    failovers +=
        record.hops[static_cast<std::size_t>(sim::TxHop::kFailover)];
  }
  EXPECT_EQ(resubmits, result.resilience.resubmissions);
  // Failover semantics differ by design: the recorder counts every
  // resubmission that targeted a different endpoint than the previous
  // attempt (a per-transaction detour), while ResilienceStats counts the
  // endpoint manager's switch EVENTS — one switch reroutes many pending
  // transactions. A switch event therefore implies at least one recorded
  // detour, never fewer.
  EXPECT_GE(failovers, result.resilience.failovers);
  EXPECT_GT(result.resilience.failovers, 0u);
  EXPECT_GT(resubmits, 0u);
}

TEST(Lifecycle, FaultedNversionRunIsByteIdenticalWithRecorderAttached) {
  // The meta-chain wraps real BlockchainNodes, so lifecycle marks flow
  // through unchanged — and recording must stay observe-only there too.
  ExperimentConfig config;
  config.chain = parse_chain_name("nversion_redbelly");
  config.fault = FaultType::kCrash;
  config.seed = 11;
  config.duration = sim::sec(60);
  config.inject_at = sim::sec(20);
  config.recover_at = sim::sec(40);

  const SensitivityRun plain = run_sensitivity(config);

  ExperimentConfig recorded_config = config;
  sim::LifecycleRecorder recorder;
  sim::TraceSink sink;
  recorded_config.lifecycle = &recorder;
  recorded_config.trace = &sink;
  const SensitivityRun recorded = run_sensitivity(recorded_config);

  EXPECT_EQ(to_json(config.chain, config.fault, recorded),
            to_json(config.chain, config.fault, plain));
  EXPECT_EQ(summary_csv_row(config.chain, config.fault, recorded),
            summary_csv_row(config.chain, config.fault, plain));
  EXPECT_FALSE(recorder.empty());
  // And the recorder itself is a deterministic function of the run.
  sim::LifecycleRecorder again;
  ExperimentConfig again_config = config;
  again_config.lifecycle = &again;
  run_sensitivity(again_config);
  ASSERT_EQ(again.size(), recorder.size());
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    EXPECT_EQ(recorder.records()[i].tx, again.records()[i].tx);
    EXPECT_EQ(recorder.records()[i].stage_at, again.records()[i].stage_at);
    EXPECT_EQ(recorder.records()[i].hops, again.records()[i].hops);
  }
}

// ------------------------------------------------------- chaos repros

TEST(TraceChaos, ReproTracesAreDeterministicAndValidate) {
  const auto campaign = [] {
    ChaosCampaignConfig config;
    config.chains = {ChainKind::kRedbelly};
    config.trials_per_chain = 2;
    config.seed = 7;
    config.base.duration = sim::sec(60);
    config.trace_repros = true;
    return config;
  };
  const ChaosCampaignResult first = run_chaos_campaign(campaign());
  const ChaosCampaignResult second = run_chaos_campaign(campaign());
  EXPECT_EQ(first.to_json(), second.to_json());
  ASSERT_EQ(first.trials.size(), second.trials.size());
  for (std::size_t i = 0; i < first.trials.size(); ++i) {
    const ChaosTrial& trial = first.trials[i];
    EXPECT_EQ(trial.repro_trace, second.trials[i].repro_trace);
    if (trial.report.violated()) {
      ASSERT_FALSE(trial.repro_trace.empty());
      EXPECT_GT(validate_trace_json(trial.repro_trace).events, 0u);
    } else {
      EXPECT_TRUE(trial.repro_trace.empty());
    }
  }
}

}  // namespace
}  // namespace stabl::core
