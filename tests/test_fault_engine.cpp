// Fault engine v2: plan validation at arm time, the new tc-netem style
// rules (loss, bandwidth, gray), overlapping rule behaviour, and whole
// FaultSchedules with concurrently active plans.
#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chain/node.hpp"
#include "core/experiment.hpp"
#include "core/observer.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------------------ validation

class NullNode final : public chain::BlockchainNode {
 public:
  using BlockchainNode::BlockchainNode;

 protected:
  void start_protocol() override {}
  void on_app_message(const net::Envelope&) override {}
  void accept_transaction(const chain::Transaction&) override {}
};

class FaultValidationTest : public ::testing::Test {
 protected:
  FaultValidationTest()
      : simulation(3), network(simulation, net::LatencyConfig{}) {
    for (net::NodeId id = 0; id < 4; ++id) {
      chain::NodeConfig config;
      config.id = id;
      config.n = 4;
      config.network_seed = 1;
      nodes.push_back(
          std::make_unique<NullNode>(simulation, network, config));
      pointers.push_back(nodes.back().get());
    }
  }

  /// Arm the plan and return the invalid_argument message ("" when it
  /// armed fine).
  std::string arm_error(const FaultPlan& plan) {
    Observers observers(simulation, network, pointers);
    try {
      observers.arm(plan);
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  }

  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<NullNode>> nodes;
  std::vector<chain::BlockchainNode*> pointers;
};

TEST_F(FaultValidationTest, RejectsEmptyTargets) {
  FaultPlan plan;
  plan.type = FaultType::kCrash;
  plan.targets = {};
  const std::string error = arm_error(plan);
  EXPECT_NE(error.find("crash"), std::string::npos) << error;
  EXPECT_NE(error.find("at least one target"), std::string::npos) << error;
}

TEST_F(FaultValidationTest, RejectsOutOfRangeTargets) {
  FaultPlan plan;
  plan.type = FaultType::kPartition;
  plan.targets = {1, 9};  // only nodes 0..3 exist
  const std::string error = arm_error(plan);
  EXPECT_NE(error.find("targets node 9"), std::string::npos) << error;
  EXPECT_NE(error.find("0..3"), std::string::npos) << error;
}

TEST_F(FaultValidationTest, RejectsInvertedFaultWindow) {
  FaultPlan plan;
  plan.type = FaultType::kLoss;
  plan.targets = {2};
  plan.inject_at = sim::sec(100);
  plan.recover_at = sim::sec(100);  // must strictly precede recovery
  const std::string error = arm_error(plan);
  EXPECT_NE(error.find("does not precede"), std::string::npos) << error;
}

TEST_F(FaultValidationTest, RejectsBadKnobs) {
  FaultPlan plan;
  plan.targets = {1};
  plan.inject_at = sim::sec(1);
  plan.recover_at = sim::sec(2);

  plan.type = FaultType::kLoss;
  plan.loss_probability = 1.5;
  EXPECT_NE(arm_error(plan).find("loss_probability"), std::string::npos);

  plan.type = FaultType::kThrottle;
  plan.throttle_bytes_per_s = 0.0;
  EXPECT_NE(arm_error(plan).find("throttle_bytes_per_s"),
            std::string::npos);

  plan.type = FaultType::kDelay;
  plan.delay_amount = sim::Duration::zero();
  EXPECT_NE(arm_error(plan).find("delay_amount"), std::string::npos);

  plan.type = FaultType::kGray;
  plan.gray_latency = sim::Duration::zero();
  EXPECT_NE(arm_error(plan).find("gray_latency"), std::string::npos);

  plan.type = FaultType::kChurn;
  plan.churn_down = sim::Duration::zero();
  EXPECT_NE(arm_error(plan).find("churn_down"), std::string::npos);
}

TEST_F(FaultValidationTest, AcceptsUntargetedNoOpPlans) {
  FaultPlan plan;
  plan.type = FaultType::kNone;
  EXPECT_EQ(arm_error(plan), "");
  plan.type = FaultType::kSecureClient;
  EXPECT_EQ(arm_error(plan), "");
}

TEST(FaultPlanValidate, CrashNeedsNoRecoveryWindow) {
  FaultPlan plan;
  plan.type = FaultType::kCrash;
  plan.targets = {0};
  plan.inject_at = sim::sec(5);
  plan.recover_at = sim::sec(0);  // ignored: a crash is permanent
  EXPECT_EQ(validate(plan, 4), "");
  EXPECT_FALSE(uses_recovery_window(FaultType::kCrash));
  EXPECT_TRUE(uses_recovery_window(FaultType::kLoss));
}

TEST_F(FaultValidationTest, RejectsDuplicateTargets) {
  // A duplicated id would silently double-arm kill/restart actions for
  // the same node.
  FaultPlan plan;
  plan.type = FaultType::kTransient;
  plan.targets = {2, 1, 2};
  const std::string error = arm_error(plan);
  EXPECT_NE(error.find("twice"), std::string::npos) << error;
  EXPECT_NE(error.find("2"), std::string::npos) << error;
  plan.targets = {2, 1};
  EXPECT_EQ(arm_error(plan), "");
}

TEST(FaultPlanCanonical, ResetsDeadFieldsAndSortsTargets) {
  FaultPlan plan;
  plan.type = FaultType::kCrash;
  plan.targets = {3, 1};
  plan.inject_at = sim::sec(10);
  plan.recover_at = sim::sec(99);    // meaningless: crash never recovers
  plan.loss_probability = 0.7;       // meaningless for a crash
  plan.gray_latency = sim::sec(9);
  const FaultPlan canon = canonical(plan);
  EXPECT_EQ(canon.recover_at, sim::Time{0});
  EXPECT_EQ(canon.targets, (std::vector<net::NodeId>{1, 3}));
  const FaultPlan defaults{};
  EXPECT_EQ(canon.loss_probability, defaults.loss_probability);
  EXPECT_EQ(canon.gray_latency, defaults.gray_latency);
  EXPECT_EQ(canon.inject_at, sim::sec(10));  // meaningful, kept

  // Two behaviourally identical plans normalize identically.
  FaultPlan other = plan;
  other.recover_at = sim::sec(123);
  other.loss_probability = 0.1;
  const FaultPlan other_canon = canonical(other);
  EXPECT_EQ(other_canon.recover_at, canon.recover_at);
  EXPECT_EQ(other_canon.loss_probability, canon.loss_probability);
}

TEST(FaultPlanCanonical, NoOpTypesDropEverything) {
  FaultPlan plan;
  plan.type = FaultType::kSecureClient;
  plan.targets = {1, 2};
  plan.inject_at = sim::sec(50);
  const FaultPlan canon = canonical(plan);
  EXPECT_TRUE(canon.targets.empty());
  EXPECT_EQ(canon.inject_at, sim::Time{0});
  EXPECT_EQ(canon.recover_at, sim::Time{0});
}

// ------------------------------------------------- rules on the network

struct Probe final : net::Endpoint {
  bool alive = true;
  std::vector<sim::Time> arrivals;

  explicit Probe(sim::Simulation& simulation) : sim_(simulation) {}

  void deliver(const net::Envelope&) override {
    arrivals.push_back(sim_.now());
  }
  [[nodiscard]] bool endpoint_alive() const override { return alive; }

 private:
  sim::Simulation& sim_;
};

struct Marker final : net::Payload {};

class RuleTest : public ::testing::Test {
 protected:
  RuleTest() : simulation(9), network(simulation, net::LatencyConfig{}) {
    for (net::NodeId id = 0; id < 4; ++id) {
      probes.push_back(std::make_unique<Probe>(simulation));
      network.attach(id, probes.back().get());
    }
  }

  void send(net::NodeId from, net::NodeId to,
            std::uint32_t bytes = 256) {
    network.send(from, to, std::make_shared<const Marker>(), bytes);
  }

  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<Probe>> probes;
};

TEST_F(RuleTest, StackedDelayRulesAddUpAndUnwindIndependently) {
  const net::RuleId first = network.add_delay({0}, {1}, sim::sec(2));
  const net::RuleId second = network.add_delay({0}, {1}, sim::sec(3));
  EXPECT_EQ(network.extra_delay(0, 1), sim::sec(5));
  EXPECT_EQ(network.extra_delay(1, 0), sim::sec(5));  // both directions
  EXPECT_EQ(network.extra_delay(0, 2), sim::Duration::zero());

  network.remove_rule(first);
  EXPECT_EQ(network.extra_delay(0, 1), sim::sec(3));
  network.remove_rule(second);
  EXPECT_EQ(network.extra_delay(0, 1), sim::Duration::zero());
}

TEST_F(RuleTest, ClearRulesRestoresEverything) {
  network.add_partition({0}, {1});
  network.add_delay({0}, {2}, sim::sec(9));
  network.add_loss({0}, {3}, 0.9);
  EXPECT_EQ(network.rule_count(), 3u);
  EXPECT_FALSE(network.permitted(0, 1));

  // Blocked at send time while the partition is up...
  send(0, 1);
  simulation.run();
  EXPECT_TRUE(probes[1]->arrivals.empty());
  EXPECT_EQ(network.stats().dropped_partition, 1u);

  // ...and back to normal once every rule is lifted at once.
  network.clear_rules();
  EXPECT_EQ(network.rule_count(), 0u);
  EXPECT_TRUE(network.permitted(0, 1));
  EXPECT_EQ(network.extra_delay(0, 2), sim::Duration::zero());
  EXPECT_EQ(network.loss_probability(0, 3), 0.0);
  send(0, 1);
  simulation.run();
  EXPECT_EQ(probes[1]->arrivals.size(), 1u);
}

TEST_F(RuleTest, PartitionInstalledMidFlightDropsAtDelivery) {
  send(0, 1);
  network.add_partition({0}, {1});
  simulation.run();
  EXPECT_TRUE(probes[1]->arrivals.empty());
  EXPECT_EQ(network.stats().dropped_partition, 1u);
}

TEST_F(RuleTest, LossRuleDropsSomeButNotAllPackets) {
  network.add_loss({0}, {1}, 0.5);
  for (int i = 0; i < 200; ++i) send(0, 1);
  simulation.run();
  const std::size_t arrived = probes[1]->arrivals.size();
  EXPECT_GT(arrived, 50u);
  EXPECT_LT(arrived, 150u);
  EXPECT_EQ(network.stats().dropped_loss, 200u - arrived);
}

TEST_F(RuleTest, LossIsDeterministicUnderAFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation simulation(seed);
    net::Network network(simulation, net::LatencyConfig{});
    Probe sink(simulation);
    Probe source(simulation);
    network.attach(0, &source);
    network.attach(1, &sink);
    network.add_loss({0}, {1}, 0.3);
    for (int i = 0; i < 300; ++i) {
      network.send(0, 1, std::make_shared<const Marker>());
    }
    simulation.run();
    return sink.arrivals;
  };
  const auto first = run_once(42);
  const auto second = run_once(42);
  EXPECT_EQ(first, second) << "same seed must lose the same packets";
  EXPECT_NE(first, run_once(43)) << "a new seed reshuffles the losses";
}

TEST_F(RuleTest, OverlappingLossRulesCompound) {
  network.add_loss({0}, {1}, 0.5);
  network.add_loss({0}, {1}, 0.5);
  EXPECT_DOUBLE_EQ(network.loss_probability(0, 1), 0.75);
  for (int i = 0; i < 400; ++i) send(0, 1);
  simulation.run();
  // ~25% survival.
  EXPECT_GT(probes[1]->arrivals.size(), 50u);
  EXPECT_LT(probes[1]->arrivals.size(), 150u);
}

TEST_F(RuleTest, BandwidthRuleSerializesPackets) {
  // 1 KiB/s: each 1 KiB packet serializes for a second and queues behind
  // its predecessor.
  network.add_bandwidth({0}, {1}, 1024.0);
  send(0, 1, 1024);
  send(0, 1, 1024);
  send(0, 1, 1024);
  send(0, 2, 1024);  // unmatched traffic is unaffected
  simulation.run();
  ASSERT_EQ(probes[1]->arrivals.size(), 3u);
  EXPECT_GE(probes[1]->arrivals[0], sim::sec(1));
  EXPECT_GE(probes[1]->arrivals[1], sim::sec(2));
  EXPECT_GE(probes[1]->arrivals[2], sim::sec(3));
  EXPECT_LT(probes[2]->arrivals.at(0), sim::sec(1));
  EXPECT_EQ(network.stats().throttled, 3u);
}

TEST_F(RuleTest, GrayRuleDelaysEverythingTouchingTheNode) {
  network.add_gray({2}, sim::sec(2));
  EXPECT_EQ(network.extra_delay(0, 2), sim::sec(2));
  EXPECT_EQ(network.extra_delay(2, 3), sim::sec(2));
  EXPECT_EQ(network.extra_delay(0, 1), sim::Duration::zero());
  EXPECT_TRUE(network.permitted(0, 2)) << "gray nodes still answer";
}

// ------------------------------------- overlapping plans and schedules

TEST_F(FaultValidationTest, OverlappingPlansKeepTheirOwnRuleHandles) {
  Observers observers(simulation, network, pointers);
  FaultSchedule schedule;

  FaultPlan wide;
  wide.type = FaultType::kDelay;
  wide.targets = {3};
  wide.delay_amount = sim::sec(1);
  wide.inject_at = sim::sec(1);
  wide.recover_at = sim::sec(5);
  schedule.add(wide);

  FaultPlan nested;  // entirely inside the wide plan's window
  nested.type = FaultType::kDelay;
  nested.targets = {3};
  nested.delay_amount = sim::sec(10);
  nested.inject_at = sim::sec(2);
  nested.recover_at = sim::sec(3);
  schedule.add(nested);

  observers.arm(schedule);

  simulation.run_until(sim::ms(1500));
  EXPECT_EQ(network.extra_delay(0, 3), sim::sec(1));
  simulation.run_until(sim::ms(2500));
  EXPECT_EQ(network.extra_delay(0, 3), sim::sec(11));  // both active
  simulation.run_until(sim::ms(3500));
  EXPECT_EQ(network.extra_delay(0, 3), sim::sec(1))
      << "the nested plan lifts only its own rule";
  simulation.run_until(sim::ms(5500));
  EXPECT_EQ(network.extra_delay(0, 3), sim::Duration::zero());
  EXPECT_EQ(network.rule_count(), 0u);
}

TEST_F(FaultValidationTest, MixedKindPlansComposeOnTheSameWindow) {
  Observers observers(simulation, network, pointers);
  FaultSchedule schedule;

  FaultPlan partition;
  partition.type = FaultType::kPartition;
  partition.targets = {2};
  partition.inject_at = sim::sec(1);
  partition.recover_at = sim::sec(4);
  schedule.add(partition);

  FaultPlan loss;
  loss.type = FaultType::kLoss;
  loss.targets = {3};
  loss.loss_probability = 0.4;
  loss.inject_at = sim::sec(2);
  loss.recover_at = sim::sec(6);
  schedule.add(loss);

  observers.arm(schedule);

  simulation.run_until(sim::ms(2500));  // both plans active
  EXPECT_FALSE(network.permitted(0, 2));
  EXPECT_DOUBLE_EQ(network.loss_probability(0, 3), 0.4);
  simulation.run_until(sim::ms(4500));  // partition lifted, loss persists
  EXPECT_TRUE(network.permitted(0, 2));
  EXPECT_DOUBLE_EQ(network.loss_probability(0, 3), 0.4);
  simulation.run_until(sim::ms(6500));
  EXPECT_EQ(network.rule_count(), 0u);
}

TEST(FaultScheduleExperiment, ComposedFaultsRunDeterministically) {
  // Acceptance scenario: a partition with packet loss layered on top,
  // both active at once mid-run, driven through the full experiment.
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.fault = FaultType::kPartition;
  config.duration = sim::sec(120);
  config.inject_at = sim::sec(40);
  config.recover_at = sim::sec(80);
  config.seed = 21;

  FaultPlan loss;
  loss.type = FaultType::kLoss;
  loss.loss_probability = 0.3;  // targets default inside the runner
  loss.inject_at = sim::sec(30);
  loss.recover_at = sim::sec(90);
  config.extra_faults.add(loss);

  const ExperimentResult first = run_experiment(config);
  const ExperimentResult second = run_experiment(config);

  EXPECT_GT(first.submitted, 0u);
  EXPECT_GT(first.committed, 0u);
  EXPECT_EQ(first.submitted, second.submitted);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.latencies, second.latencies);
  EXPECT_EQ(first.events, second.events);
}

TEST(FaultScheduleExperiment, GrayPlusChurnOverlapOnTheSameTarget) {
  // A gray failure (all traffic slowed) and crash-recovery churn armed on
  // the SAME node with overlapping windows: the gray rule must survive the
  // node's kill/restart cycles and the run must stay deterministic.
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.fault = FaultType::kGray;
  config.fault_targets = {5};
  config.duration = sim::sec(120);
  config.inject_at = sim::sec(30);
  config.recover_at = sim::sec(90);
  config.seed = 33;
  config.capture_replicas = true;

  FaultPlan churn;
  churn.type = FaultType::kChurn;
  churn.targets = {5};
  churn.inject_at = sim::sec(40);
  churn.recover_at = sim::sec(80);
  churn.churn_down = sim::sec(5);
  churn.churn_up = sim::sec(7);
  config.extra_faults.add(churn);

  const ExperimentResult first = run_experiment(config);
  const ExperimentResult second = run_experiment(config);
  EXPECT_GT(first.committed, 0u);
  EXPECT_TRUE(first.live_at_end);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.events, second.events);
  // The churn plan actually cycled the node through crash/restart.
  ASSERT_EQ(first.replicas.size(), config.n);
  EXPECT_GT(first.replicas[5].restarts, 0);
  // And both plans resolved onto the same target.
  const FaultSchedule schedule = resolved_schedule(config);
  ASSERT_EQ(schedule.plans.size(), 2u);
  EXPECT_EQ(schedule.plans[0].targets, schedule.plans[1].targets);
}

TEST(FaultTypeNames, NewFaultKinds) {
  EXPECT_EQ(to_string(FaultType::kLoss), "loss");
  EXPECT_EQ(to_string(FaultType::kThrottle), "throttle");
  EXPECT_EQ(to_string(FaultType::kGray), "gray");
}

}  // namespace
}  // namespace stabl::core
