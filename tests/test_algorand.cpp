// Algorand protocol model tests: sortition-driven rounds, dynamic round
// time, empty rounds on dead proposers, quorum threshold, recovery.
#include "chains/algorand/algorand.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace stabl::algorand {
namespace {

using testing::Harness;

void build(Harness& harness, std::size_t n = 10, AlgorandConfig config = {}) {
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 31;
  harness.nodes =
      make_cluster(harness.simulation, harness.network, node_config, config);
}

AlgorandNode& node_at(Harness& harness, std::size_t index) {
  return static_cast<AlgorandNode&>(*harness.nodes[index]);
}

TEST(Algorand, BaselineCommitsWorkload) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(50));
  EXPECT_GT(harness.total_client_committed(), 7000u);
  testing::expect_prefix_consistent(harness);
  testing::expect_no_double_execution(harness);
}

TEST(Algorand, DynamicRoundTimeAdaptsDown) {
  // The filter wait creeps from its default toward the floor over clean
  // rounds — the paper's "throughput increase after approximately 133
  // seconds" in miniature.
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(5));
  const auto early = node_at(harness, 0).filter_wait();
  harness.simulation.run_until(sim::sec(60));
  const auto late = node_at(harness, 0).filter_wait();
  EXPECT_LT(late, early);
}

TEST(Algorand, CrashedProposerResetsTiming) {
  AlgorandConfig config;
  Harness harness;
  build(harness, 10, config);
  harness.add_clients(5, 40.0, sim::sec(120));
  harness.start_all();
  harness.simulation.run_until(sim::sec(60));
  const auto adapted = node_at(harness, 0).filter_wait();
  EXPECT_LT(adapted, config.default_filter_wait);
  harness.nodes[9]->kill();  // f = t = 1
  // Sooner or later sortition picks node 9 as proposer; that round commits
  // empty and resets the timing parameters to their defaults.
  harness.simulation.run_until(sim::sec(120));
  bool saw_empty_round = false;
  for (const auto& block : harness.nodes[0]->ledger().blocks()) {
    if (block.txs.empty() &&
        block.committed_at > sim::sec(60)) {
      saw_empty_round = true;
    }
  }
  EXPECT_TRUE(saw_empty_round);
  EXPECT_GT(harness.total_client_committed(), 20000u) << "still live";
}

TEST(Algorand, HaltsWhenQuorumLost) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  // f = t+1 = 2 > t: below the 85% stake threshold, rounds cannot certify.
  harness.nodes[8]->kill();
  harness.nodes[9]->kill();
  const auto before = harness.nodes[0]->ledger().height();
  harness.simulation.run_until(sim::sec(50));
  EXPECT_LE(harness.nodes[0]->ledger().height(), before + 2);
}

TEST(Algorand, RecoversAfterTransientFailure) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(90));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  harness.nodes[8]->kill();
  harness.nodes[9]->kill();
  harness.simulation.run_until(sim::sec(50));
  harness.nodes[8]->start();
  harness.nodes[9]->start();
  harness.simulation.run_until(sim::sec(90));
  // Backlog clears: nearly everything submitted by t=90 commits.
  EXPECT_GT(harness.total_client_committed(), 15500u);
  testing::expect_prefix_consistent(harness);
}

TEST(Algorand, ProposerRotatesByRound) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(60));
  std::set<net::NodeId> proposers;
  for (const auto& block : harness.nodes[0]->ledger().blocks()) {
    if (!block.txs.empty()) proposers.insert(block.proposer);
  }
  EXPECT_GE(proposers.size(), 5u) << "sortition spreads proposals";
}

TEST(Algorand, GossipSharesTransactionsWithNonEntryNodes) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(10));
  harness.start_all();
  harness.simulation.run_until(sim::sec(5));
  // Node 9 never receives client submissions, yet pools transactions.
  const auto& remote = *harness.nodes[9];
  EXPECT_GT(remote.mempool().size() + remote.ledger().tx_count(), 50u);
}

}  // namespace
}  // namespace stabl::algorand
