// Invariant oracle layer (core/oracle.hpp): synthetic violations for every
// oracle, the exemption downgrade logic, the no-false-positive sweep over
// the paper's full scripted matrix, and the seeded self-test — a toy chain
// that deliberately forks its ledger must be caught by the agreement
// oracle and shrunk to a tiny repro.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chain/hash.hpp"
#include "chain/node.hpp"
#include "core/chaos.hpp"
#include "core/observer.hpp"
#include "core/oracle.hpp"
#include "core/throughput.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------- synthetic scaffolding

BlockSummary block(std::uint64_t height, double at_s,
                   std::vector<chain::TxId> txs) {
  BlockSummary summary;
  summary.height = height;
  summary.committed_at_s = at_s;
  summary.txs = std::move(txs);
  return summary;
}

/// A healthy two-replica result: identical ledgers, all ids submitted,
/// steady throughput for the whole run.
ExperimentResult healthy_result() {
  ExperimentResult result;
  for (net::NodeId id = 0; id < 2; ++id) {
    ReplicaSnapshot replica;
    replica.id = id;
    replica.blocks = {block(0, 1.0, {1, 2}), block(1, 2.0, {3}),
                      block(2, 3.0, {4, 5})};
    result.replicas.push_back(std::move(replica));
  }
  result.submitted_ids = {1, 2, 3, 4, 5};
  result.submitted = 5;
  result.committed = 5;
  result.live_at_end = true;
  result.throughput.assign(60, 10.0);
  return result;
}

OracleContext context_with(FaultSchedule schedule,
                           ChainKind chain = ChainKind::kRedbelly) {
  OracleContext context;
  context.chain = chain;
  context.schedule = std::move(schedule);
  context.duration = sim::sec(60);
  context.primary_fault = FaultType::kNone;
  return context;
}

FaultPlan window_plan(FaultType type, sim::Time inject, sim::Time recover,
                      std::vector<net::NodeId> targets = {5}) {
  FaultPlan plan;
  plan.type = type;
  plan.targets = std::move(targets);
  plan.inject_at = inject;
  plan.recover_at = recover;
  return plan;
}

const OracleFinding* find_oracle(const OracleReport& report,
                                 const std::string& name) {
  for (const OracleFinding& finding : report.findings) {
    if (finding.oracle == name) return &finding;
  }
  return nullptr;
}

// ------------------------------------------------------- per-oracle tests

TEST(OracleSafety, HealthyResultPassesEverything) {
  const OracleReport report =
      check_invariants(context_with({}), healthy_result());
  EXPECT_EQ(report.verdict, OracleVerdict::kPass) << report.summary();
  EXPECT_EQ(report.summary(), "all oracles passed");
  EXPECT_EQ(report.violation(), nullptr);
}

TEST(OracleSafety, AgreementCatchesALedgerFork) {
  ExperimentResult result = healthy_result();
  result.replicas[1].blocks[1] = block(1, 2.0, {30});  // fork at height 1
  result.submitted_ids.push_back(30);
  const OracleReport report =
      check_invariants(context_with({}), result);
  EXPECT_TRUE(report.violated());
  ASSERT_NE(report.violation(), nullptr);
  EXPECT_EQ(report.violation()->oracle, "agreement");
  EXPECT_NE(report.violation()->detail.find("height 1"), std::string::npos)
      << report.violation()->detail;
}

TEST(OracleSafety, AgreementComparesOnlyTheCommonPrefix) {
  ExperimentResult result = healthy_result();
  result.replicas[1].blocks.pop_back();  // replica 1 is merely behind
  const OracleReport report = check_invariants(context_with({}), result);
  EXPECT_FALSE(report.violated()) << report.summary();
}

TEST(OracleSafety, DuplicateCommitIsCaught) {
  ExperimentResult result = healthy_result();
  result.replicas[0].blocks[2] = block(2, 3.0, {4, 1});  // 1 again
  const OracleReport report = check_invariants(context_with({}), result);
  ASSERT_NE(find_oracle(report, "no-duplicate-commit"), nullptr);
  EXPECT_EQ(find_oracle(report, "no-duplicate-commit")->verdict,
            OracleVerdict::kViolation);
}

TEST(OracleSafety, NonConsecutiveHeightsAreCaught) {
  ExperimentResult result = healthy_result();
  result.replicas[0].blocks[2].height = 7;
  const OracleReport report = check_invariants(context_with({}), result);
  ASSERT_NE(find_oracle(report, "monotone"), nullptr);
  EXPECT_EQ(find_oracle(report, "monotone")->verdict,
            OracleVerdict::kViolation);
}

TEST(OracleSafety, BackwardsCommitTimeIsCaught) {
  ExperimentResult result = healthy_result();
  result.replicas[0].blocks[2].committed_at_s = 0.5;
  const OracleReport report = check_invariants(context_with({}), result);
  ASSERT_NE(find_oracle(report, "monotone"), nullptr);
  EXPECT_EQ(find_oracle(report, "monotone")->verdict,
            OracleVerdict::kViolation);
}

TEST(OracleSafety, InventedTransactionIsCaught) {
  ExperimentResult result = healthy_result();
  result.replicas[0].blocks[1].txs.push_back(999);  // never submitted
  const OracleReport report = check_invariants(context_with({}), result);
  ASSERT_NE(find_oracle(report, "committed-subset"), nullptr);
  EXPECT_EQ(find_oracle(report, "committed-subset")->verdict,
            OracleVerdict::kViolation);
}

TEST(OracleSafety, SkippedWithAnExplanationWithoutSnapshots) {
  ExperimentResult result = healthy_result();
  result.replicas.clear();
  const OracleReport report = check_invariants(context_with({}), result);
  EXPECT_EQ(report.verdict, OracleVerdict::kPass);
  ASSERT_NE(find_oracle(report, "safety"), nullptr);
  EXPECT_NE(find_oracle(report, "safety")->detail.find("capture_replicas"),
            std::string::npos);
}

TEST(OracleLiveness, FaultFreeRunMustStayLive) {
  ExperimentResult result = healthy_result();
  result.live_at_end = false;
  const OracleReport report = check_invariants(context_with({}), result);
  ASSERT_NE(report.violation(), nullptr);
  EXPECT_EQ(report.violation()->oracle, "recovery-resume");
}

TEST(OracleLiveness, NoCommitsAfterRecoveryIsAViolation) {
  ExperimentResult result = healthy_result();
  // Dead from the fault onwards: bins 20.. are silent.
  for (std::size_t t = 20; t < result.throughput.size(); ++t) {
    result.throughput[t] = 0.0;
  }
  result.live_at_end = false;
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kPartition, sim::sec(20), sim::sec(30)));
  const OracleReport report =
      check_invariants(context_with(schedule), result);
  ASSERT_NE(report.violation(), nullptr);
  EXPECT_EQ(report.violation()->oracle, "recovery-resume");
}

TEST(OracleLiveness, CrashSchedulesNeverRequireResumption) {
  ExperimentResult result = healthy_result();
  for (std::size_t t = 20; t < result.throughput.size(); ++t) {
    result.throughput[t] = 0.0;
  }
  result.live_at_end = false;
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kCrash, sim::sec(20), sim::sec(0)));
  schedule.add(window_plan(FaultType::kLoss, sim::sec(20), sim::sec(30), {6}));
  const OracleReport report =
      check_invariants(context_with(schedule), result);
  EXPECT_FALSE(report.violated()) << report.summary();
}

TEST(OracleLiveness, ShortObservationWindowIsInconclusive) {
  ExperimentResult result = healthy_result();
  for (std::size_t t = 20; t < result.throughput.size(); ++t) {
    result.throughput[t] = 0.0;
  }
  FaultSchedule schedule;
  // Recovers 5 s before the end: too little signal to judge.
  schedule.add(window_plan(FaultType::kPartition, sim::sec(40), sim::sec(55)));
  const OracleReport report =
      check_invariants(context_with(schedule), result);
  EXPECT_FALSE(report.violated()) << report.summary();
  EXPECT_NE(find_oracle(report, "recovery-resume")->detail.find(
                "inconclusive"),
            std::string::npos);
}

TEST(OracleLiveness, ExemptionDowngradesWithEvidence) {
  ExperimentResult result = healthy_result();
  for (std::size_t t = 20; t < result.throughput.size(); ++t) {
    result.throughput[t] = 0.0;
  }
  result.live_at_end = false;
  result.chain_metrics["panicked"] = 4.0;
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kDelay, sim::sec(20), sim::sec(30)));
  const OracleReport report = check_invariants(
      context_with(schedule, ChainKind::kSolana), result);
  EXPECT_FALSE(report.violated()) << report.summary();
  EXPECT_EQ(report.verdict, OracleVerdict::kExpectedLoss);
  EXPECT_EQ(find_oracle(report, "recovery-resume")->verdict,
            OracleVerdict::kExpectedLoss);
}

TEST(OracleLiveness, ExemptionRequiresItsEvidenceMetric) {
  ExperimentResult result = healthy_result();
  for (std::size_t t = 20; t < result.throughput.size(); ++t) {
    result.throughput[t] = 0.0;
  }
  result.live_at_end = false;  // liveness lost but NO panic recorded
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kDelay, sim::sec(20), sim::sec(30)));
  const OracleReport report = check_invariants(
      context_with(schedule, ChainKind::kSolana), result);
  EXPECT_TRUE(report.violated()) << "a Solana liveness loss without a "
                                    "panic must stay a violation";
}

TEST(OracleLiveness, ExemptionIsChainSpecific) {
  ExperimentResult result = healthy_result();
  for (std::size_t t = 20; t < result.throughput.size(); ++t) {
    result.throughput[t] = 0.0;
  }
  result.live_at_end = false;
  result.chain_metrics["panicked"] = 4.0;
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kDelay, sim::sec(20), sim::sec(30)));
  const OracleReport report = check_invariants(
      context_with(schedule, ChainKind::kRedbelly), result);
  EXPECT_TRUE(report.violated());
}

TEST(OracleLiveness, SafetyViolationsAreNeverExempted) {
  ExperimentResult result = healthy_result();
  result.replicas[1].blocks[1] = block(1, 2.0, {30});
  result.submitted_ids.push_back(30);
  result.chain_metrics["panicked"] = 4.0;
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kDelay, sim::sec(20), sim::sec(30)));
  const OracleReport report = check_invariants(
      context_with(schedule, ChainKind::kSolana), result);
  EXPECT_TRUE(report.violated());
  EXPECT_EQ(report.violation()->oracle, "agreement");
}

TEST(OracleConsistency, RecoverySecondsMustMatchTheSeries) {
  ExperimentResult result = healthy_result();
  result.recovery_seconds = 17.0;  // series actually recovers immediately
  OracleContext context = context_with({});
  context.primary_fault = FaultType::kTransient;
  context.primary_recover_at = sim::sec(30);
  context.recovery_threshold_tps = 5.0;
  const OracleReport report = check_invariants(context, result);
  ASSERT_NE(report.violation(), nullptr);
  EXPECT_EQ(report.violation()->oracle, "recovery-consistency");

  result.recovery_seconds = recovery_seconds(result.throughput, 30.0, 5.0);
  EXPECT_FALSE(check_invariants(context, result).violated());
}

// --------------------------------- scripted-matrix no-false-positive sweep

// Every (chain, scripted fault) cell of the paper's canonical matrix
// (seed 42, 400 s, fault at 133 s, recovery at 266 s) must satisfy the
// oracles. The chains that lose liveness by design (Solana panics,
// Avalanche throttles itself to death) must come out as expected-loss —
// evidence-backed — never as violations, and never as safety failures.
TEST(OracleScriptedMatrix, NoFalsePositivesAcrossAllChainsAndFaults) {
  const FaultType kScripted[] = {
      FaultType::kCrash,  FaultType::kTransient, FaultType::kPartition,
      FaultType::kSecureClient, FaultType::kDelay, FaultType::kChurn,
      FaultType::kLoss,   FaultType::kThrottle,  FaultType::kGray};
  for (const ChainKind chain : kAllChains) {
    for (const FaultType fault : kScripted) {
      ExperimentConfig config;
      config.chain = chain;
      config.fault = fault;
      config.seed = 42;
      config.duration = sim::sec(400);
      config.inject_at = sim::sec(133);
      config.recover_at = sim::sec(266);
      config.capture_replicas = true;
      if (fault == FaultType::kSecureClient) {
        config.client_fanout = 4;
        config.vcpus = 8.0;
      }
      const ExperimentResult result = run_experiment(config);
      const OracleReport report =
          check_invariants(make_oracle_context(config), result);
      EXPECT_FALSE(report.violated())
          << to_string(chain) << " x " << to_string(fault) << ": "
          << report.summary();
    }
  }
}

// ------------------------------------------------- seeded toy-chain fork

/// A deliberately broken toy protocol: node 0 is a fixed leader that
/// decides a block each second and broadcasts it; followers commit
/// whatever the leader sends. The bug: a follower that has not heard from
/// the leader for 3 s starts deciding blocks ALONE — a split brain that
/// forks the ledger as soon as a partition separates it from the leader.
class ForkingToyNode final : public chain::BlockchainNode {
 public:
  ForkingToyNode(sim::Simulation& simulation, net::Network& network,
                 chain::NodeConfig config,
                 std::vector<chain::TxId>* submitted)
      : BlockchainNode(simulation, network, std::move(config)),
        submitted_(submitted) {}

 protected:
  void start_protocol() override {
    last_heard_ = now();
    tick();
  }

  void on_app_message(const net::Envelope& envelope) override {
    const auto* batch = dynamic_cast<const chain::TxBatchPayload*>(
        envelope.payload.get());
    if (batch == nullptr) return;
    last_heard_ = now();
    commit_block(batch->txs, /*proposer=*/0);
  }

 private:
  void tick() {
    set_timer(sim::sec(1), [this] { tick(); });
    if (node_id() == 0) {
      std::vector<chain::Transaction> txs{make_tx()};
      commit_block(txs, node_id());
      broadcast(std::make_shared<const chain::TxBatchPayload>(txs), 256);
    } else if (now() - last_heard_ > sim::sec(3)) {
      // Split brain: decide without the leader.
      commit_block({make_tx()}, node_id());
    }
  }

  chain::Transaction make_tx() {
    chain::Transaction tx;
    tx.id = (static_cast<chain::TxId>(node_id()) << 32) | seq_;
    tx.from = static_cast<chain::AccountId>(node_id());
    tx.to = 1000;
    tx.amount = 1;
    tx.nonce = seq_;
    ++seq_;
    submitted_->push_back(tx.id);
    return tx;
  }

  std::vector<chain::TxId>* submitted_;
  sim::Time last_heard_{0};
  std::uint64_t seq_ = 0;
};

/// Run the toy chain under a candidate schedule and audit it — the
/// evaluator the shrinker re-runs candidates through.
OracleReport run_toy_chain(const FaultSchedule& schedule) {
  constexpr std::size_t kNodes = 6;
  const sim::Duration duration = sim::sec(60);
  sim::Simulation simulation(7);
  net::Network network(simulation, net::LatencyConfig{});
  std::vector<chain::TxId> submitted;
  std::vector<std::unique_ptr<ForkingToyNode>> nodes;
  std::vector<chain::BlockchainNode*> node_ptrs;
  for (std::size_t i = 0; i < kNodes; ++i) {
    chain::NodeConfig node_config;
    node_config.id = static_cast<net::NodeId>(i);
    node_config.n = kNodes;
    node_config.network_seed = chain::mix64(7);
    nodes.push_back(std::make_unique<ForkingToyNode>(
        simulation, network, node_config, &submitted));
    node_ptrs.push_back(nodes.back().get());
    nodes.back()->start();
  }
  Observers observers(simulation, network, node_ptrs);
  observers.arm(schedule);
  simulation.run_until(duration);

  ExperimentResult result;
  result.replicas = snapshot_replicas(node_ptrs);
  result.submitted_ids = submitted;
  result.submitted = submitted.size();
  result.committed = nodes.front()->ledger().tx_count();
  result.live_at_end = true;
  result.throughput = ThroughputSeries(nodes.front()->ledger(), duration)
                          .bins();
  OracleContext context;
  context.chain = ChainKind::kRedbelly;  // no exemptions apply to the toy
  context.schedule = schedule;
  context.duration = duration;
  return check_invariants(context, result);
}

TEST(OracleSelfTest, ToyForkIsCaughtAndShrunkToATinyRepro) {
  // A noisy 4-plan schedule; only the partition (isolating followers 4 and
  // 5 from the leader) actually provokes the split brain.
  FaultSchedule schedule;
  schedule.add(window_plan(FaultType::kPartition, sim::sec(10), sim::sec(40),
                           {4, 5}));
  schedule.add(window_plan(FaultType::kGray, sim::sec(5), sim::sec(20), {3}));
  schedule.add(window_plan(FaultType::kLoss, sim::sec(15), sim::sec(25),
                           {2}));
  schedule.add(window_plan(FaultType::kThrottle, sim::sec(30), sim::sec(50),
                           {1}));

  const OracleReport direct = run_toy_chain(schedule);
  ASSERT_TRUE(direct.violated()) << direct.summary();
  EXPECT_EQ(direct.violation()->oracle, "agreement");

  const std::optional<ShrinkResult> shrunk =
      shrink_schedule(schedule, run_toy_chain);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->oracle, "agreement");
  EXPECT_LE(shrunk->schedule.plans.size(), 2u)
      << schedule_to_json(shrunk->schedule);
  EXPECT_EQ(shrunk->initial_plans, 4u);

  // The minimized schedule is a real repro: replaying it (including after
  // a JSON round-trip) still trips the same oracle.
  const FaultSchedule replayed =
      schedule_from_json(schedule_to_json(shrunk->schedule));
  const OracleReport replay = run_toy_chain(replayed);
  ASSERT_TRUE(replay.violated()) << replay.summary();
  EXPECT_EQ(replay.violation()->oracle, "agreement");
}

TEST(OracleSelfTest, HealthyToyChainPassesAllOracles) {
  const OracleReport report = run_toy_chain({});
  EXPECT_EQ(report.verdict, OracleVerdict::kPass) << report.summary();
}

}  // namespace
}  // namespace stabl::core
