// Tests for sensitivity attribution (core/attribution.hpp): the
// lifecycle fold, the per-cell delta accessors, and the campaign's two
// hard guarantees — byte-identical reports at every jobs setting, and
// per-stage latency deltas that sum (within floating-point rounding) to
// the cell's measured mean commit-latency delta.
#include "core/attribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/experiment.hpp"
#include "sim/lifecycle.hpp"

namespace stabl::core {
namespace {

// ----------------------------------------------------------------- fold

TEST(FoldLifecycle, SeparatesConfirmedLostAndHopTotals) {
  sim::LifecycleRecorder recorder;
  // A confirmed transaction: 1s in each of the five segments.
  for (std::size_t s = 0; s < sim::kNumTxStages; ++s) {
    recorder.mark(1, static_cast<sim::TxStage>(s),
                  sim::seconds(1.0 + static_cast<double>(s)));
  }
  recorder.hop(1, sim::TxHop::kResubmit);
  // A lost transaction that died in the mempool.
  recorder.mark(2, sim::TxStage::kSubmitted, sim::seconds(2.0));
  recorder.mark(2, sim::TxStage::kEntryReceived, sim::seconds(2.1));
  recorder.mark(2, sim::TxStage::kQueued, sim::seconds(2.2));

  const StageBreakdown fold = fold_lifecycle(recorder);
  EXPECT_EQ(fold.submitted, 2u);
  EXPECT_EQ(fold.confirmed, 1u);
  for (std::size_t i = 0; i < kNumStageSegments; ++i) {
    EXPECT_NEAR(fold.mean_s[i], 1.0, 1e-9);
  }
  EXPECT_NEAR(fold.mean_latency_s, 5.0, 1e-9);
  EXPECT_EQ(fold.lost_at[static_cast<std::size_t>(sim::TxStage::kQueued)],
            1u);
  EXPECT_EQ(fold.hops[static_cast<std::size_t>(sim::TxHop::kResubmit)], 1u);
}

// ------------------------------------------------------------ accessors

TEST(AttributionCell, DominantSegmentAndLossDelta) {
  AttributionCell cell;
  cell.baseline.submitted = 100;
  cell.altered.submitted = 100;
  cell.baseline.mean_s = {0.1, 0.1, 0.1, 0.1, 0.1};
  cell.altered.mean_s = {0.1, 0.1, 0.3, 1.1, 0.1};
  const auto deltas = cell.delta_s();
  EXPECT_NEAR(deltas[2], 0.2, 1e-9);
  EXPECT_NEAR(deltas[3], 1.0, 1e-9);
  EXPECT_EQ(cell.dominant_segment(), 3u);  // consensus
  EXPECT_NEAR(cell.dominant_share(), 1.0 / 1.2, 1e-9);
  EXPECT_STREQ(sim::stage_segment_names()[cell.dominant_segment()],
               "consensus");

  cell.baseline.lost_at[1] = 5;   // 5% lost at entry in the baseline
  cell.altered.lost_at[1] = 25;   // 25% in the altered run
  EXPECT_NEAR(cell.loss_delta()[1], 0.20, 1e-9);
}

// ------------------------------------------------------------- campaign

AttributionConfig small_grid() {
  AttributionConfig config;
  config.chains = {ChainKind::kRedbelly, ChainKind::kAlgorand};
  config.faults = {FaultType::kCrash, FaultType::kPartition};
  config.base.seed = 11;
  config.base.duration = sim::sec(60);
  config.base.inject_at = sim::sec(20);
  config.base.recover_at = sim::sec(40);
  return config;
}

TEST(Attribution, ReportIsByteIdenticalAtEveryJobsSetting) {
  AttributionConfig serial = small_grid();
  serial.jobs = 1;
  AttributionConfig parallel = small_grid();
  parallel.jobs = 4;
  const AttributionReport a = run_attribution(serial);
  const AttributionReport b = run_attribution(parallel);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_table(), b.to_table());
  ASSERT_EQ(a.cells.size(), 4u);
  EXPECT_NE(a.get(ChainKind::kRedbelly, FaultType::kCrash), nullptr);
  EXPECT_EQ(a.get(ChainKind::kSolana, FaultType::kCrash), nullptr);
}

TEST(Attribution, StageDeltasSumToMeasuredLatencyDeltaOnPaperCrashCells) {
  // The acceptance invariant: for every paper chain's crash cell, the five
  // per-stage mean-latency deltas telescope to the measured mean
  // commit-latency delta of the pair (within floating-point rounding of
  // the per-record double conversions).
  AttributionConfig config;
  config.faults = {FaultType::kCrash};
  config.base.duration = sim::sec(120);
  config.base.inject_at = sim::sec(40);
  config.base.recover_at = sim::sec(80);
  config.jobs = 4;
  const AttributionReport report = run_attribution(config);
  ASSERT_EQ(report.cells.size(), 5u);
  for (const AttributionCell& cell : report.cells) {
    ASSERT_TRUE(cell.altered_live_at_end) << to_string(cell.chain);
    EXPECT_GT(cell.baseline.confirmed, 0u);
    EXPECT_GT(cell.altered.confirmed, 0u);
    double sum = 0.0;
    for (const double d : cell.delta_s()) sum += d;
    EXPECT_NEAR(sum, cell.measured_latency_delta_s, 1e-6)
        << to_string(cell.chain);
    // The recorder's view of the mean latency matches the experiment's.
    EXPECT_NEAR(cell.altered.mean_latency_s - cell.baseline.mean_latency_s,
                cell.measured_latency_delta_s, 1e-6)
        << to_string(cell.chain);
  }
}

TEST(Attribution, SerializersUseFixedPrecisionAndStageNames) {
  AttributionConfig config = small_grid();
  config.chains = {ChainKind::kRedbelly};
  config.faults = {FaultType::kCrash};
  const AttributionReport report = run_attribution(config);
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("queueing_delta_s"), std::string::npos);
  EXPECT_NE(csv.find("consensus_p99_s"), std::string::npos);
  EXPECT_NE(csv.find("hops_resubmit"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"dominant_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_latency_delta_s\""), std::string::npos);
}

}  // namespace
}  // namespace stabl::core
