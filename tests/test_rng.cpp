#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace stabl::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(rng.lognormal_median(5.0, 0.4));
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], 5.0, 0.25);
  for (const double x : xs) ASSERT_GT(x, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.08);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(10, 6);
    ASSERT_EQ(sample.size(), 6u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    ASSERT_EQ(unique.size(), 6u);
    for (const std::size_t v : sample) ASSERT_LT(v, 10u);
  }
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleUniformity) {
  // Every element should be sampled roughly equally often.
  Rng rng(29);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (const std::size_t v : rng.sample_without_replacement(10, 3)) {
      ++counts[v];
    }
  }
  for (const int c : counts) EXPECT_NEAR(c, 1500, 150);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DeriveIsConstAndRepeatable) {
  const Rng root(41);
  Rng a = root.derive(5);
  Rng b = root.derive(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DeriveStreamsAreIndependentOfDerivationOrder) {
  const Rng root(41);
  // Derive in two different orders; stream 2 must not care.
  (void)root.derive(9);
  Rng first = root.derive(2);
  (void)root.derive(1);
  (void)root.derive(1234567);
  Rng second = root.derive(2);
  EXPECT_EQ(first.next_u64(), second.next_u64());
}

TEST(Rng, DeriveStreamsDiverge) {
  const Rng root(41);
  int equal = 0;
  Rng a = root.derive(0);
  Rng b = root.derive(1);
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
  // Different roots give different streams too.
  EXPECT_NE(Rng(41).derive(7).next_u64(), Rng(42).derive(7).next_u64());
}

TEST(Rng, DeriveDoesNotPerturbTheParent) {
  Rng with_derive(43);
  Rng without(43);
  (void)with_derive.derive(3);
  (void)with_derive.derive(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(with_derive.next_u64(), without.next_u64());
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace stabl::sim
