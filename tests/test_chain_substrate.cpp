// Unit tests for the common blockchain substrate: accounts, mempool,
// ledger, CPU model, VRF sortition.
#include <gtest/gtest.h>

#include "chain/account.hpp"
#include "chain/cpu.hpp"
#include "chain/hash.hpp"
#include "chain/ledger.hpp"
#include "chain/mempool.hpp"
#include "chain/vrf.hpp"
#include "sim/simulation.hpp"

namespace stabl::chain {
namespace {

Transaction make_tx(TxId id, AccountId from, std::uint64_t nonce,
                    std::uint64_t amount = 1) {
  Transaction tx;
  tx.id = id;
  tx.from = from;
  tx.to = 999;
  tx.amount = amount;
  tx.nonce = nonce;
  return tx;
}

// ---------------------------------------------------------------- accounts

TEST(AccountState, AppliesInNonceOrder) {
  AccountState accounts(100);
  EXPECT_EQ(accounts.next_nonce(1), 0u);
  EXPECT_TRUE(accounts.apply(make_tx(10, 1, 0)));
  EXPECT_EQ(accounts.next_nonce(1), 1u);
  EXPECT_FALSE(accounts.apply(make_tx(11, 1, 0)));  // replay
  EXPECT_FALSE(accounts.apply(make_tx(12, 1, 2)));  // gap
  EXPECT_TRUE(accounts.apply(make_tx(13, 1, 1)));
}

TEST(AccountState, TransfersBalance) {
  AccountState accounts(100);
  EXPECT_TRUE(accounts.apply(make_tx(1, 1, 0, 30)));
  EXPECT_EQ(accounts.balance(1), 70u);
  EXPECT_EQ(accounts.balance(999), 130u);
}

TEST(AccountState, RejectsOverdraft) {
  AccountState accounts(10);
  EXPECT_FALSE(accounts.apply(make_tx(1, 1, 0, 11)));
  EXPECT_EQ(accounts.next_nonce(1), 0u);
  EXPECT_EQ(accounts.balance(1), 10u);
}

TEST(AccountState, ApplicableMatchesApply) {
  AccountState accounts(10);
  const Transaction good = make_tx(1, 1, 0, 5);
  const Transaction gap = make_tx(2, 1, 7, 5);
  EXPECT_TRUE(accounts.applicable(good));
  EXPECT_FALSE(accounts.applicable(gap));
}

TEST(AccountState, ClearResets) {
  AccountState accounts(10);
  EXPECT_TRUE(accounts.apply(make_tx(1, 1, 0, 5)));
  accounts.clear();
  EXPECT_EQ(accounts.next_nonce(1), 0u);
  EXPECT_EQ(accounts.balance(1), 10u);
}

// ----------------------------------------------------------------- mempool

TEST(Mempool, DeduplicatesById) {
  Mempool pool;
  EXPECT_TRUE(pool.add(make_tx(1, 1, 0)));
  EXPECT_FALSE(pool.add(make_tx(1, 1, 0)));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.duplicate_submissions(), 1u);
}

TEST(Mempool, CollectReadyRespectsNonceChain) {
  Mempool pool;
  pool.add(make_tx(3, 1, 2));
  pool.add(make_tx(1, 1, 0));
  // nonce 1 missing: only nonce 0 is ready.
  const auto ready =
      pool.collect_ready(10, [](AccountId) { return std::uint64_t{0}; });
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].id, 1u);
}

TEST(Mempool, CollectReadyChainsConsecutiveNonces) {
  Mempool pool;
  for (std::uint64_t n = 0; n < 5; ++n) pool.add(make_tx(10 + n, 1, n));
  const auto ready =
      pool.collect_ready(10, [](AccountId) { return std::uint64_t{0}; });
  ASSERT_EQ(ready.size(), 5u);
  for (std::uint64_t n = 0; n < 5; ++n) EXPECT_EQ(ready[n].nonce, n);
}

TEST(Mempool, CollectReadyHonorsLimit) {
  Mempool pool;
  for (std::uint64_t n = 0; n < 10; ++n) pool.add(make_tx(10 + n, 1, n));
  EXPECT_EQ(pool.collect_ready(3, [](AccountId) { return std::uint64_t{0}; })
                .size(),
            3u);
}

TEST(Mempool, CollectReadyMultipleSenders) {
  Mempool pool;
  pool.add(make_tx(1, 1, 0));
  pool.add(make_tx(2, 2, 0));
  pool.add(make_tx(3, 2, 1));
  const auto ready =
      pool.collect_ready(10, [](AccountId) { return std::uint64_t{0}; });
  EXPECT_EQ(ready.size(), 3u);
}

TEST(Mempool, RemoveErasesEntries) {
  Mempool pool;
  pool.add(make_tx(1, 1, 0));
  pool.add(make_tx(2, 1, 1));
  pool.remove({make_tx(1, 1, 0)});
  EXPECT_FALSE(pool.contains(1));
  EXPECT_TRUE(pool.contains(2));
}

TEST(Mempool, RemoveStaleDropsExecutedNonces) {
  Mempool pool;
  pool.add(make_tx(1, 1, 0));
  pool.add(make_tx(2, 1, 1));
  pool.add(make_tx(3, 1, 5));
  pool.remove_stale([](AccountId) { return std::uint64_t{2}; });
  EXPECT_FALSE(pool.contains(1));
  EXPECT_FALSE(pool.contains(2));
  EXPECT_TRUE(pool.contains(3));
}

TEST(Mempool, KnownIdsAndGet) {
  Mempool pool;
  pool.add(make_tx(42, 3, 0));
  EXPECT_EQ(pool.known_ids(), std::vector<TxId>{42});
  ASSERT_TRUE(pool.get(42).has_value());
  EXPECT_EQ(pool.get(42)->from, 3u);
  EXPECT_FALSE(pool.get(43).has_value());
}

// ------------------------------------------------------------------ ledger

TEST(Ledger, AppendsSequentially) {
  Ledger ledger;
  Block block;
  block.height = 0;
  block.committed_at = sim::sec(1);
  block.txs = {make_tx(1, 1, 0)};
  ledger.append(block);
  EXPECT_EQ(ledger.height(), 1u);
  EXPECT_TRUE(ledger.is_committed(1));
  EXPECT_EQ(ledger.commit_time(1), sim::sec(1));
  EXPECT_EQ(ledger.tx_count(), 1u);
}

TEST(Ledger, EmptyBlocksAllowed) {
  Ledger ledger;
  Block block;
  block.height = 0;
  ledger.append(block);
  EXPECT_EQ(ledger.height(), 1u);
  EXPECT_EQ(ledger.tx_count(), 0u);
}

TEST(Ledger, LastCommitTimeTracksTail) {
  Ledger ledger;
  EXPECT_EQ(ledger.last_commit_time(), sim::Time{0});
  Block block;
  block.height = 0;
  block.committed_at = sim::sec(3);
  ledger.append(block);
  EXPECT_EQ(ledger.last_commit_time(), sim::sec(3));
}

// --------------------------------------------------------------------- cpu

class CpuHost final : public sim::Process {
 public:
  using Process::Process;
};

TEST(CpuModel, RunsWorkAfterCost) {
  sim::Simulation simulation(1);
  CpuHost host(simulation, 0);
  host.start();
  CpuModel cpu(host, 1.0);
  sim::Time done_at{0};
  cpu.submit(sim::ms(100), [&] { done_at = simulation.now(); });
  simulation.run();
  EXPECT_EQ(done_at, sim::ms(100));
}

TEST(CpuModel, QueuesBeyondCores) {
  sim::Simulation simulation(1);
  CpuHost host(simulation, 0);
  host.start();
  CpuModel cpu(host, 2.0);
  std::vector<sim::Time> done;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(sim::ms(100), [&] { done.push_back(simulation.now()); });
  }
  simulation.run();
  ASSERT_EQ(done.size(), 4u);
  // Two run immediately, two queue behind them.
  EXPECT_EQ(done[0], sim::ms(100));
  EXPECT_EQ(done[1], sim::ms(100));
  EXPECT_EQ(done[2], sim::ms(200));
  EXPECT_EQ(done[3], sim::ms(200));
}

TEST(CpuModel, QueueDelayReflectsBacklog) {
  sim::Simulation simulation(1);
  CpuHost host(simulation, 0);
  host.start();
  CpuModel cpu(host, 1.0);
  EXPECT_EQ(cpu.queue_delay(), sim::Duration::zero());
  cpu.submit(sim::ms(500), [] {});
  EXPECT_EQ(cpu.queue_delay(), sim::ms(500));
}

TEST(CpuModel, CrashAbandonsWork) {
  sim::Simulation simulation(1);
  CpuHost host(simulation, 0);
  host.start();
  CpuModel cpu(host, 1.0);
  bool finished = false;
  cpu.submit(sim::ms(100), [&] { finished = true; });
  host.kill();
  cpu.reset();
  simulation.run();
  EXPECT_FALSE(finished);
}

TEST(DecayingMeter, TracksRateAndDecays) {
  DecayingMeter meter(sim::sec(1));
  // Steady input of 0.5 units/sec for a while settles near rate 0.5.
  sim::Time t{0};
  for (int i = 0; i < 100; ++i) {
    t += sim::ms(100);
    meter.add(t, 0.05);
  }
  EXPECT_NEAR(meter.rate(t), 0.5, 0.05);
  // After 5 time constants of silence, the rate collapses.
  EXPECT_LT(meter.rate(t + sim::sec(5)), 0.01);
}

// --------------------------------------------------------------------- vrf

TEST(Vrf, DeterministicAcrossCalls) {
  const auto a = sortition_committee(1, 5, 0, 10, 4.0);
  const auto b = sortition_committee(1, 5, 0, 10, 4.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sortition_leader(1, 5, 0, 10), sortition_leader(1, 5, 0, 10));
}

TEST(Vrf, LeaderVariesWithRound) {
  std::set<net::NodeId> leaders;
  for (std::uint64_t round = 0; round < 50; ++round) {
    leaders.insert(sortition_leader(9, round, 0, 10));
  }
  // Over 50 rounds, many distinct leaders appear.
  EXPECT_GE(leaders.size(), 6u);
}

TEST(Vrf, CommitteeSizeNearExpectation) {
  double total = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    total += static_cast<double>(
        sortition_committee(3, round, 1, 100, 20.0).size());
  }
  EXPECT_NEAR(total / 400.0, 20.0, 1.5);
}

TEST(Vrf, CommitteeIncludesCrashedNodes) {
  // Sortition is oblivious to liveness: over many rounds every node id is
  // selected at some point (the paper's reason Algorand rounds stall).
  std::set<net::NodeId> seen;
  for (std::uint64_t round = 0; round < 200; ++round) {
    for (const auto id : sortition_committee(3, round, 0, 10, 5.0)) {
      seen.insert(id);
    }
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Vrf, DrawInUnitInterval) {
  for (std::uint64_t round = 0; round < 100; ++round) {
    const double draw = sortition_draw(7, round, 2, 3);
    ASSERT_GE(draw, 0.0);
    ASSERT_LT(draw, 1.0);
  }
}

// -------------------------------------------------------------------- hash

TEST(Hash, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace stabl::chain
