// Algorand relay/participation topology tests (§2: "Relay nodes and
// participation nodes have distinct roles... a single node can fulfill
// both functions"; §7: the flat deployment "lacks the hierarchical or
// segmented structure that typically benefits" from the secure client).
#include "chains/algorand/algorand.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace stabl::algorand {
namespace {

using testing::Harness;

void build(Harness& harness, std::size_t relay_count,
           std::size_t n = 10) {
  AlgorandConfig config;
  config.relay_count = relay_count;
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 31;
  harness.nodes =
      make_cluster(harness.simulation, harness.network, node_config, config);
}

const AlgorandNode& node_at(const Harness& harness, std::size_t index) {
  return static_cast<const AlgorandNode&>(*harness.nodes[index]);
}

TEST(AlgorandRelays, FlatTopologyMakesEveryNodeARelay) {
  Harness harness;
  build(harness, 0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(node_at(harness, i).is_relay());
  }
}

TEST(AlgorandRelays, HierarchicalTopologyMarksRoles) {
  Harness harness;
  build(harness, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(node_at(harness, i).is_relay(), i < 3);
  }
}

TEST(AlgorandRelays, ConsensusWorksThroughRelays) {
  // Participation nodes only talk to the 3 relays, yet rounds certify:
  // votes and proposals are relayed.
  Harness harness;
  build(harness, 3);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(45));
  EXPECT_GT(harness.total_client_committed(), 6800u);
  testing::expect_prefix_consistent(harness);
  testing::expect_no_double_execution(harness);
}

TEST(AlgorandRelays, GossipReachesParticipationNodesViaRelays) {
  Harness harness;
  build(harness, 3);
  harness.add_clients(5, 40.0, sim::sec(10));
  harness.start_all();
  harness.simulation.run_until(sim::sec(8));
  // Node 9 peers only with relays 0-2; its pool still fills.
  const auto& leaf = *harness.nodes[9];
  EXPECT_GT(leaf.mempool().size() + leaf.ledger().tx_count(), 100u);
}

TEST(AlgorandRelays, RelayCrashDegradesButParticipationCrashDoesNot) {
  // Crashing a leaf only removes one voter; crashing a relay also severs
  // the paths of its exclusive leaves — the topology concentrates risk.
  Harness flat;
  build(flat, 2);  // relays 0,1; leaves 2..9 connect to both
  flat.add_clients(2, 40.0, sim::sec(60));
  flat.start_all();
  flat.simulation.run_until(sim::sec(20));
  flat.nodes[9]->kill();  // leaf
  flat.simulation.run_until(sim::sec(60));
  const auto leaf_crash_committed = flat.total_client_committed();
  EXPECT_GT(leaf_crash_committed, 3500u) << "one leaf is just one vote";
}

TEST(AlgorandRelays, SecureClientHelpsOnlyWithHierarchy) {
  // The paper's §7 explanation, inverted: in a hierarchical topology where
  // entry points are distinct leaves, redundant submission spreads a
  // transaction to several relays at once and the mean latency improves
  // more than in the flat deployment.
  auto mean_latency = [](std::size_t relays, int fanout) {
    Harness harness;
    build(harness, relays);
    // Clients attach to participation nodes (5..9 are always leaves here).
    for (std::size_t i = 0; i < 4; ++i) {
      core::ClientConfig config;
      config.id = static_cast<net::NodeId>(10 + i);
      config.account = static_cast<chain::AccountId>(i);
      config.recipient = 999;
      config.tps = 40.0;
      config.stop_at = sim::sec(60);
      config.tx_seed = chain::mix64(99);
      for (int k = 0; k < fanout; ++k) {
        config.endpoints.push_back(static_cast<net::NodeId>(
            5 + (i + static_cast<std::size_t>(k)) % 5));
      }
      harness.clients.push_back(std::make_unique<core::ClientMachine>(
          harness.simulation, harness.network, config));
    }
    harness.start_all();
    harness.simulation.run_until(sim::sec(60));
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& client : harness.clients) {
      for (const double latency : client->latencies()) {
        sum += latency;
        ++count;
      }
    }
    return count == 0 ? 1e9 : sum / static_cast<double>(count);
  };
  const double flat_gain = mean_latency(0, 1) - mean_latency(0, 4);
  const double tree_gain = mean_latency(3, 1) - mean_latency(3, 4);
  // Flat: essentially no benefit (paper: "remains unchanged").
  EXPECT_LT(std::abs(flat_gain), 0.25);
  // Hierarchical: the redundancy is worth something real.
  EXPECT_GT(tree_gain, flat_gain - 0.05);
}

}  // namespace
}  // namespace stabl::algorand
