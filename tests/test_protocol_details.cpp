// Deeper protocol-level tests across the five chain models: round/sync
// edge cases that the headline experiments exercise only implicitly.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "chains/algorand/algorand.hpp"
#include "chains/aptos/aptos.hpp"
#include "chains/avalanche/avalanche.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "chains/solana/solana.hpp"

namespace stabl {
namespace {

using testing::Harness;

template <typename MakeCluster, typename Config>
void build_chain(Harness& harness, MakeCluster make, Config config,
                 std::size_t n = 10) {
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 23;
  harness.nodes = make(harness.simulation, harness.network, node_config,
                       config);
}

// ------------------------------------------------------------------ Aptos

TEST(AptosDetail, LaggingReplicaJumpsRoundsViaSync) {
  Harness harness;
  build_chain(harness, aptos::make_cluster, aptos::AptosConfig{});
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  // Take one replica out for a while; the chain keeps going (9 >= 7).
  harness.nodes[6]->kill();
  harness.simulation.run_until(sim::sec(40));
  const auto& reference = *harness.nodes[0];
  ASSERT_GT(reference.ledger().height(), 50u);
  harness.nodes[6]->start();
  harness.simulation.run_until(sim::sec(60));
  // The restarted replica must be within a few blocks of the tip and in
  // the same round neighbourhood.
  const auto& lagger = static_cast<const aptos::AptosNode&>(
      *harness.nodes[6]);
  EXPECT_GT(lagger.ledger().height() + 10, reference.ledger().height());
  EXPECT_GT(lagger.current_round() + 10,
            static_cast<const aptos::AptosNode&>(reference).current_round());
  testing::expect_prefix_consistent(harness);
}

TEST(AptosDetail, TimeoutsFormCertificatesWithoutCommits) {
  // With an idle workload and a dead leader, rounds advance through
  // timeout certificates (no blocks needed).
  Harness harness;
  build_chain(harness, aptos::make_cluster, aptos::AptosConfig{});
  harness.start_all();
  harness.simulation.run_until(sim::sec(2));
  harness.nodes[3]->kill();
  harness.simulation.run_until(sim::sec(40));
  const auto& node = static_cast<const aptos::AptosNode&>(
      *harness.nodes[0]);
  EXPECT_GT(node.current_round(), 30u)
      << "rounds must advance past dead leaders via TCs";
}

TEST(AptosDetail, ExclusionIsEventuallySharedByAllReplicas) {
  aptos::AptosConfig config;
  config.leader_fail_threshold = 3;
  Harness harness;
  build_chain(harness, aptos::make_cluster, config);
  harness.add_clients(5, 40.0, sim::sec(50));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  harness.nodes[8]->kill();
  harness.simulation.run_until(sim::sec(50));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(static_cast<const aptos::AptosNode&>(*harness.nodes[i])
                    .excluded_leaders()
                    .contains(8))
        << "replica " << i;
  }
}

// --------------------------------------------------------------- Redbelly

TEST(RedbellyDetail, EmptyRoundsKeepHeightAlignedWithRound) {
  Harness harness;
  build_chain(harness, redbelly::make_cluster, redbelly::RedbellyConfig{});
  harness.start_all();  // no clients: all rounds empty
  harness.simulation.run_until(sim::sec(20));
  const auto& node = static_cast<const redbelly::RedbellyNode&>(
      *harness.nodes[0]);
  EXPECT_GT(node.ledger().height(), 10u);
  EXPECT_EQ(node.ledger().height(), node.current_round());
  for (const auto& block : node.ledger().blocks()) {
    EXPECT_TRUE(block.txs.empty());
  }
}

TEST(RedbellyDetail, IsolatedProposerTransactionsWaitForItsProposal) {
  // A transaction submitted to a node whose proposal cannot reach the
  // deciders (the node is crashed right after pooling) is not lost: the
  // client's copy is only at that node, so it commits after restart.
  Harness harness;
  build_chain(harness, redbelly::make_cluster, redbelly::RedbellyConfig{});
  harness.add_clients(1, 10.0, sim::sec(8));
  harness.start_all();
  harness.simulation.run_until(sim::sec(5));
  const auto pooled = harness.nodes[0]->mempool().size() +
                      harness.nodes[0]->ledger().tx_count();
  EXPECT_GT(pooled, 20u);
  harness.nodes[0]->kill();
  harness.simulation.run_until(sim::sec(20));
  harness.nodes[0]->start();
  harness.simulation.run_until(sim::sec(40));
  // All submitted transactions eventually commit (client keeps no retry
  // logic: the restarted node lost its mempool, so only the pre-crash
  // committed ones are guaranteed; assert no double execution regardless).
  testing::expect_no_double_execution(harness);
  testing::expect_prefix_consistent(harness);
}

// ----------------------------------------------------------------- Solana

TEST(SolanaDetail, ForwardRetryResendsUncommitted) {
  solana::SolanaConfig config;
  Harness harness;
  build_chain(harness, solana::make_cluster, config);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  // Kill three validators: some leader groups blank; retries must still
  // land every transaction eventually.
  for (net::NodeId id = 5; id < 8; ++id) harness.nodes[id]->kill();
  harness.simulation.run_until(sim::sec(70));
  EXPECT_GT(harness.total_client_committed(),
            harness.total_client_submitted() - 500);
}

TEST(SolanaDetail, PanicIsPermanentWithinTheRun) {
  Harness harness;
  build_chain(harness, solana::make_cluster, solana::SolanaConfig{});
  harness.add_clients(5, 40.0, sim::sec(400));
  harness.start_all();
  harness.simulation.run_until(sim::sec(133));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->kill();
  harness.simulation.run_until(sim::sec(200));
  const auto& panicked = static_cast<const solana::SolanaNode&>(
      *harness.nodes[0]);
  ASSERT_TRUE(panicked.panicked());
  // Even restarting the panicked node manually re-panics it at the next
  // EAH integration point while the supermajority stays offline.
  harness.nodes[0]->start();
  harness.simulation.run_until(sim::sec(399));
  EXPECT_FALSE(harness.nodes[0]->alive());
}

// -------------------------------------------------------------- Avalanche

TEST(AvalancheDetail, LaggardLearnsCandidateThroughPullRepair) {
  Harness harness;
  build_chain(harness, avalanche::make_cluster,
              avalanche::AvalancheConfig{});
  harness.add_clients(5, 40.0, sim::sec(90));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  harness.nodes[9]->kill();  // within t: chain continues
  harness.simulation.run_until(sim::sec(50));
  const auto before = harness.nodes[9]->ledger().height();
  harness.nodes[9]->start();
  harness.simulation.run_until(sim::sec(90));
  EXPECT_GT(harness.nodes[9]->ledger().height(), before + 5)
      << "restart + pull repair must re-join consensus";
  testing::expect_prefix_consistent(harness);
}

TEST(AvalancheDetail, HeightsNeverSkip) {
  Harness harness;
  build_chain(harness, avalanche::make_cluster,
              avalanche::AvalancheConfig{});
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(40));
  const auto& blocks = harness.nodes[0]->ledger().blocks();
  ASSERT_FALSE(blocks.empty());
  for (std::size_t h = 0; h < blocks.size(); ++h) {
    EXPECT_EQ(blocks[h].height, h);
    EXPECT_EQ(blocks[h].round, h) << "consensus height == ledger height";
  }
}

// --------------------------------------------------------------- Algorand

TEST(AlgorandDetail, EmptyRoundsCarryNoTransactionsButAdvance) {
  Harness harness;
  build_chain(harness, algorand::make_cluster, algorand::AlgorandConfig{});
  harness.start_all();  // idle network
  harness.simulation.run_until(sim::sec(30));
  const auto& node = static_cast<const algorand::AlgorandNode&>(
      *harness.nodes[0]);
  EXPECT_GT(node.current_round(), 5u);
  EXPECT_EQ(node.ledger().tx_count(), 0u);
}

TEST(AlgorandDetail, FilterWaitNeverLeavesConfiguredBounds) {
  algorand::AlgorandConfig config;
  Harness harness;
  build_chain(harness, algorand::make_cluster, config);
  harness.add_clients(5, 40.0, sim::sec(90));
  harness.start_all();
  harness.simulation.run_until(sim::sec(30));
  harness.nodes[9]->kill();  // cause resets
  for (int t = 31; t <= 90; t += 7) {
    harness.simulation.run_until(sim::sec(t));
    const auto wait = static_cast<const algorand::AlgorandNode&>(
                          *harness.nodes[0])
                          .filter_wait();
    EXPECT_GE(wait, config.min_filter_wait);
    EXPECT_LE(wait, config.default_filter_wait);
  }
}

}  // namespace
}  // namespace stabl
