#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace stabl::net {
namespace {

struct Probe final : Endpoint {
  bool alive = true;
  std::vector<Envelope> received;

  void deliver(const Envelope& envelope) override {
    received.push_back(envelope);
  }
  [[nodiscard]] bool endpoint_alive() const override { return alive; }
};

struct Marker final : Payload {
  explicit Marker(int v) : value(v) {}
  int value;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : simulation(1), network(simulation, LatencyConfig{}) {
    for (NodeId id = 0; id < 4; ++id) network.attach(id, &probes[id]);
  }

  sim::Simulation simulation;
  Network network;
  Probe probes[4];
};

TEST_F(NetworkTest, DeliversWithPositiveLatency) {
  network.send(0, 1, std::make_shared<const Marker>(7));
  EXPECT_TRUE(probes[1].received.empty());
  simulation.run();
  ASSERT_EQ(probes[1].received.size(), 1u);
  EXPECT_GT(simulation.now(), sim::Time{0});
  const auto* marker =
      dynamic_cast<const Marker*>(probes[1].received[0].payload.get());
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->value, 7);
  EXPECT_EQ(probes[1].received[0].from, 0u);
}

TEST_F(NetworkTest, PartitionDropsBothDirections) {
  network.add_partition({0, 1}, {2, 3});
  network.send(0, 2, std::make_shared<const Marker>(1));
  network.send(3, 1, std::make_shared<const Marker>(2));
  network.send(0, 1, std::make_shared<const Marker>(3));  // same side: ok
  network.send(2, 3, std::make_shared<const Marker>(4));  // same side: ok
  simulation.run();
  EXPECT_TRUE(probes[2].received.empty());
  EXPECT_EQ(probes[1].received.size(), 1u);
  EXPECT_EQ(probes[3].received.size(), 1u);
  EXPECT_EQ(network.stats().dropped_partition, 2u);
}

TEST_F(NetworkTest, RemoveRuleRestoresDelivery) {
  const RuleId rule = network.add_partition({0}, {1});
  network.send(0, 1, std::make_shared<const Marker>(1));
  simulation.run();
  EXPECT_TRUE(probes[1].received.empty());
  network.remove_rule(rule);
  network.send(0, 1, std::make_shared<const Marker>(2));
  simulation.run();
  EXPECT_EQ(probes[1].received.size(), 1u);
}

TEST_F(NetworkTest, RuleInstalledMidFlightDropsPacket) {
  network.send(0, 1, std::make_shared<const Marker>(1));
  network.add_partition({0}, {1});  // installed before delivery event
  simulation.run();
  EXPECT_TRUE(probes[1].received.empty());
}

TEST_F(NetworkTest, DeadEndpointDrawsRst) {
  probes[1].alive = false;
  network.send(0, 1, std::make_shared<const Marker>(1));
  simulation.run();
  EXPECT_TRUE(probes[1].received.empty());
  ASSERT_EQ(probes[0].received.size(), 1u);
  const auto* control = dynamic_cast<const ControlPayload*>(
      probes[0].received[0].payload.get());
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->kind, ControlPayload::Kind::kRst);
  EXPECT_EQ(network.stats().dropped_dead, 1u);
  EXPECT_EQ(network.stats().rst_sent, 1u);
}

TEST_F(NetworkTest, RstToDeadEndpointDoesNotEcho) {
  // Two dead endpoints must not generate an infinite RST exchange.
  probes[0].alive = false;
  probes[1].alive = false;
  network.send(0, 1, std::make_shared<const Marker>(1));
  simulation.run();
  EXPECT_LE(network.stats().rst_sent, 1u);
}

TEST_F(NetworkTest, PartitionSuppressesRst) {
  // With a partition in place, packets are dropped by the filter before
  // reaching the dead host, so the sender gets no RST.
  probes[1].alive = false;
  network.add_partition({0}, {1});
  network.send(0, 1, std::make_shared<const Marker>(1));
  simulation.run();
  EXPECT_TRUE(probes[0].received.empty());
  EXPECT_EQ(network.stats().rst_sent, 0u);
}

TEST_F(NetworkTest, PermittedReflectsRules) {
  EXPECT_TRUE(network.permitted(0, 2));
  network.add_partition({0}, {2});
  EXPECT_FALSE(network.permitted(0, 2));
  EXPECT_FALSE(network.permitted(2, 0));
  EXPECT_TRUE(network.permitted(0, 1));
  network.clear_rules();
  EXPECT_TRUE(network.permitted(0, 2));
}

TEST_F(NetworkTest, StatsCountDeliveries) {
  for (int i = 0; i < 5; ++i) {
    network.send(0, 1, std::make_shared<const Marker>(i));
  }
  simulation.run();
  EXPECT_EQ(network.stats().sent, 5u);
  EXPECT_EQ(network.stats().delivered, 5u);
}

TEST(Latency, RespectsFloorAndBytes) {
  sim::Rng rng(3);
  LatencyConfig config;
  config.median = sim::us(500);
  config.sigma = 0.0;
  config.floor = sim::us(100);
  config.ns_per_byte = 1000.0;  // 1us per byte, exaggerated
  LatencyModel model(config);
  const auto small = model.sample(rng, 0);
  const auto big = model.sample(rng, 10000);
  EXPECT_EQ(small, sim::us(500));
  EXPECT_EQ(big, sim::us(500 + 10000));
}

TEST(Latency, DeterministicWithZeroSigma) {
  sim::Rng rng(3);
  LatencyModel model(LatencyConfig{sim::us(300), 0.0, sim::us(50), 0.0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(rng, 100), sim::us(300));
  }
}

TEST(Latency, SamplesSpreadWithSigma) {
  sim::Rng rng(3);
  LatencyModel model(LatencyConfig{sim::us(500), 0.5, sim::us(50), 0.0});
  sim::Duration lo = sim::sec(1);
  sim::Duration hi = sim::us(0);
  for (int i = 0; i < 1000; ++i) {
    const auto v = model.sample(rng, 100);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ASSERT_GE(v, sim::us(50));
  }
  EXPECT_LT(lo, sim::us(400));
  EXPECT_GT(hi, sim::us(700));
}

}  // namespace
}  // namespace stabl::net
