// Declarative scenarios (core/scenario.hpp): strict parsing, byte-stable
// round-trips, and the property the layer exists for — a dumped spec,
// re-parsed and resolved, reproduces the flag-configured run's report
// byte for byte.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/serialize.hpp"

namespace stabl {
namespace {

std::string error_of(const std::string& json) {
  try {
    (void)core::scenario_from_json(json);
    return "";
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
}

// ------------------------------------------------------------ round trip

TEST(Scenario, DefaultSpecRoundTripsByteStably) {
  const core::ScenarioSpec spec;
  const std::string json = core::scenario_to_json(spec);
  EXPECT_EQ(core::scenario_from_json(json), spec);
  EXPECT_EQ(core::scenario_to_json(core::scenario_from_json(json)), json);
}

TEST(Scenario, EmptyObjectIsTheDefaultRedbellyBaseline) {
  const core::ScenarioSpec spec = core::scenario_from_json("{}");
  EXPECT_EQ(spec, core::ScenarioSpec{});
  EXPECT_EQ(spec.chain, "redbelly");
  EXPECT_EQ(spec.duration_s, 400);
}

TEST(Scenario, MissingKeysKeepTheirDefaults) {
  const core::ScenarioSpec spec = core::scenario_from_json(
      R"({"chain": "solana", "fault": "transient", "duration_s": 120})");
  EXPECT_EQ(spec.chain, "solana");
  EXPECT_EQ(spec.fault, "transient");
  EXPECT_EQ(spec.duration_s, 120);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.workload, "constant");
  EXPECT_FALSE(spec.resilient);
}

TEST(Scenario, NonDefaultSpecRoundTripsByteStably) {
  core::ScenarioSpec spec;
  spec.name = "fig6 avalanche partition, tuned";
  spec.chain = "avalanche";
  spec.chain_params = {{"cpu_target", 0.8}, {"throttling", 0.0}};
  spec.fault = "partition";
  spec.fault_targets = {0, 1, 2};
  spec.extra_faults = {"loss", "gray"};
  spec.loss_probability = 0.3;
  spec.duration_s = 90;
  spec.num_seeds = 3;
  spec.workload = "bursty";
  spec.resilient = true;
  spec.trace = "out.trace.json";
  const std::string json = core::scenario_to_json(spec);
  EXPECT_EQ(core::scenario_from_json(json), spec);
  EXPECT_EQ(core::scenario_to_json(core::scenario_from_json(json)), json);
}

// -------------------------------------------------------------- rejection

TEST(Scenario, UnknownKeysAreRejected) {
  const std::string what = error_of(R"({"chian": "redbelly"})");
  EXPECT_NE(what.find("unknown key \"chian\""), std::string::npos) << what;
}

TEST(Scenario, DuplicateKeysAreRejected) {
  const std::string what =
      error_of(R"({"seed": 1, "seed": 2})");
  EXPECT_NE(what.find("duplicate key \"seed\""), std::string::npos) << what;
}

TEST(Scenario, TrailingGarbageIsRejected) {
  EXPECT_THROW((void)core::scenario_from_json("{} trailing"),
               std::invalid_argument);
}

TEST(Scenario, NonIntegralIntegersAreRejected) {
  const std::string what = error_of(R"({"duration_s": 60.5})");
  EXPECT_NE(what.find("\"duration_s\" must be an integer"),
            std::string::npos)
      << what;
}

TEST(Scenario, OutOfRangeValuesAreRejected) {
  EXPECT_NE(error_of(R"({"duration_s": 10})")
                .find("\"duration_s\" must be >= 30"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"num_seeds": 0})").find("must be >= 1"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"loss_probability": 1.5})").find("(0, 1]"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"seed": -3})").find("\"seed\" must be >= 0"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"workload": "spiky"})")
                .find("constant, bursty, ramp, diurnal or flash"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"shrink": true})")
                .find("\"shrink\" needs \"chaos_trials\" > 0"),
            std::string::npos);
}

// --------------------------------------------------------------- resolve

TEST(Scenario, ResolvePerformsTheHistoricalFlagPostprocessing) {
  core::ScenarioSpec spec;
  spec.fault = "partition";
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  // 400 s keeps the paper's 133 s / 266 s fault window.
  EXPECT_EQ(resolved.config.duration, sim::sec(400));
  EXPECT_EQ(resolved.config.inject_at, sim::sec(133));
  EXPECT_EQ(resolved.config.recover_at, sim::sec(266));
  EXPECT_EQ(resolved.config.chain, core::ChainKind::kRedbelly);
  EXPECT_EQ(resolved.config.fault, core::FaultType::kPartition);

  // The §7 secure-client geometry: fanout 4, 8-vCPU VMs — unless the
  // scenario pinned a fanout itself.
  spec.fault = "secure-client";
  EXPECT_EQ(core::resolve_scenario(spec).config.client_fanout, 4);
  EXPECT_DOUBLE_EQ(core::resolve_scenario(spec).config.vcpus, 8.0);
  spec.fanout = 2;
  EXPECT_EQ(core::resolve_scenario(spec).config.client_fanout, 2);

  // Extra plans share the primary window and knob values.
  spec = core::ScenarioSpec{};
  spec.fault = "partition";
  spec.extra_faults = {"loss"};
  spec.loss_probability = 0.3;
  const core::ResolvedScenario composed = core::resolve_scenario(spec);
  ASSERT_EQ(composed.config.extra_faults.plans.size(), 1u);
  const core::FaultPlan& plan = composed.config.extra_faults.plans[0];
  EXPECT_EQ(plan.type, core::FaultType::kLoss);
  EXPECT_EQ(plan.inject_at, sim::sec(133));
  EXPECT_EQ(plan.recover_at, sim::sec(266));
  EXPECT_DOUBLE_EQ(plan.loss_probability, 0.3);
}

TEST(Scenario, ResolveRejectsUnknownNamesAndParameters) {
  core::ScenarioSpec spec;
  spec.chain = "cardano";
  try {
    (void)core::resolve_scenario(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cardano"), std::string::npos);
  }
  spec.chain = "avalanche";
  spec.chain_params = {{"beta", 8.0}};  // real knob, but not a registered one
  EXPECT_THROW((void)core::resolve_scenario(spec), std::invalid_argument);
  spec.chain_params.clear();
  spec.fault = "meteor";
  EXPECT_THROW((void)core::resolve_scenario(spec), std::invalid_argument);
}

// ------------------------------------------------- report byte identity

TEST(Scenario, DumpedSpecReproducesTheFlagRunReportBytes) {
  // The flag path: what stabl_cli historically built from
  // `--chain redbelly --fault crash --duration 60`.
  core::ExperimentConfig flag_config;
  flag_config.chain = core::ChainKind::kRedbelly;
  flag_config.fault = core::FaultType::kCrash;
  flag_config.duration = sim::sec(60);
  flag_config.inject_at = sim::sec(20);
  flag_config.recover_at = sim::sec(40);
  const core::SensitivityRun flag_run = core::run_sensitivity(flag_config);

  // The scenario path: the equivalent spec, dumped, re-parsed, resolved.
  core::ScenarioSpec spec;
  spec.fault = "crash";
  spec.duration_s = 60;
  const core::ScenarioSpec reloaded =
      core::scenario_from_json(core::scenario_to_json(spec));
  const core::SensitivityRun scenario_run =
      core::run_sensitivity(core::resolve_scenario(reloaded).config);

  EXPECT_EQ(
      core::to_json(core::ChainKind::kRedbelly, core::FaultType::kCrash,
                    flag_run),
      core::to_json(core::ChainKind::kRedbelly, core::FaultType::kCrash,
                    scenario_run));
}

}  // namespace
}  // namespace stabl
