// Secure/verified clients under adverse conditions: combinations the
// individual §7 and §4-6 experiments do not cover.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "core/experiment.hpp"

namespace stabl::core {
namespace {

using testing::Harness;

void build_redbelly(Harness& harness) {
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 77;
  harness.nodes = redbelly::make_cluster(harness.simulation,
                                         harness.network, node_config);
}

ClientMachine* add_client(Harness& harness, std::vector<net::NodeId> eps,
                          std::size_t matching) {
  ClientConfig config;
  config.id = static_cast<net::NodeId>(10 + harness.clients.size());
  config.account = static_cast<chain::AccountId>(harness.clients.size());
  config.recipient = 999;
  config.endpoints = std::move(eps);
  config.tps = 20.0;
  config.stop_at = sim::sec(20);
  config.required_matching = matching;
  config.tx_seed = chain::mix64(5);
  harness.clients.push_back(std::make_unique<ClientMachine>(
      harness.simulation, harness.network, config));
  return harness.clients.back().get();
}

TEST(SecureClientFaults, TooManyLiarsMeansNoAcceptanceNotWrongAcceptance) {
  // 2 Byzantine RPC endpoints out of 4 with a 3-matching rule: honest
  // answers can only ever reach 2 matches, so the verified client accepts
  // nothing — it fails SAFE rather than accepting a fabricated result.
  Harness harness;
  build_redbelly(harness);
  harness.nodes[0]->set_rpc_byzantine(true);
  harness.nodes[1]->set_rpc_byzantine(true);
  auto* client = add_client(harness, {0, 1, 2, 3}, /*matching=*/3);
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  EXPECT_EQ(client->committed(), 0u);
  for (const auto& [id, hash] : client->accepted_hashes()) {
    FAIL() << "accepted " << id << " without a matching quorum";
  }
}

TEST(SecureClientFaults, TwoLiarsWithDistinctLiesCannotForgeAQuorum) {
  // Each Byzantine endpoint fabricates its own hash (they are keyed by the
  // transaction), so even two liars never form a 2-matching quorum of
  // wrong answers; a 2-matching client still commits on the honest pair.
  Harness harness;
  build_redbelly(harness);
  harness.nodes[0]->set_rpc_byzantine(true);
  harness.nodes[1]->set_rpc_byzantine(true);
  auto* client = add_client(harness, {0, 1, 2, 3}, /*matching=*/2);
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  EXPECT_GT(client->committed(), 300u);
  std::uint64_t wrong = 0;
  for (const auto& [id, hash] : client->accepted_hashes()) {
    if (!harness.nodes[2]->ledger().is_committed(id)) ++wrong;
  }
  EXPECT_EQ(wrong, 0u);
}

TEST(SecureClientFaults, SecureClientSurvivesCrashOfNonEndpointNodes) {
  // The paper's secure client during the §4 crash experiment: endpoints
  // are the never-faulted nodes, so redundancy plus crashes compose.
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(60);
  config.inject_at = sim::sec(20);
  config.fault = FaultType::kCrash;
  config.client_fanout = 4;
  config.vcpus = 8.0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, 10500u);
}

TEST(SecureClientFaults, MatchingClientToleratesOneCrashedEndpoint) {
  // An endpoint that crashes is simply silent; a 3-of-4 matching client
  // keeps committing, while a wait-for-all client stalls.
  Harness harness;
  build_redbelly(harness);
  auto* wait_all = add_client(harness, {0, 1, 2, 3}, /*matching=*/0);
  auto* matching = add_client(harness, {0, 1, 2, 3}, /*matching=*/3);
  harness.start_all();
  harness.simulation.run_until(sim::sec(5));
  harness.nodes[3]->kill();
  harness.simulation.run_until(sim::sec(30));
  EXPECT_GT(matching->committed(), 300u);
  // The wait-for-all client stops at the crash point (node 3 never acks).
  EXPECT_LT(wait_all->committed(), matching->committed());
}

TEST(SecureClientFaults, ExperimentLevelMatchingClientWorks) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(40);
  config.fault = FaultType::kSecureClient;
  config.client_fanout = 4;
  config.client_matching = 3;
  config.vcpus = 8.0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, 7300u);
}

}  // namespace
}  // namespace stabl::core
