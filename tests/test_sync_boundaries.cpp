// Edge-of-window tests: multi-chunk state sync, and the timing boundary of
// Solana's EAH panic (the fault must stop rooting *before* the EAH window
// opens at 1/4 of the epoch for the 3/4-point integration to fail).
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "chain/node.hpp"
#include "chains/solana/solana.hpp"

namespace stabl {
namespace {

using testing::Harness;

// -------------------------------------------------- multi-chunk sync

class StubNode final : public chain::BlockchainNode {
 public:
  using BlockchainNode::BlockchainNode;
  using BlockchainNode::commit_block;
  using BlockchainNode::request_sync;

 protected:
  void start_protocol() override {}
  void on_app_message(const net::Envelope&) override {}
};

TEST(SyncBoundaries, LedgerSyncSpansMultipleChunks) {
  sim::Simulation simulation(3);
  net::Network network(simulation, net::LatencyConfig{});
  chain::NodeConfig config;
  config.n = 2;
  config.network_seed = 9;
  config.id = 0;
  StubNode source(simulation, network, config);
  config.id = 1;
  StubNode target(simulation, network, config);
  source.start();
  target.start();
  simulation.run_until(sim::ms(100));
  // 600 blocks: needs three 256-block sync chunks.
  for (std::uint64_t h = 0; h < 600; ++h) {
    chain::Transaction tx;
    tx.id = 1000 + h;
    tx.from = 1;
    tx.nonce = h;
    tx.amount = 1;
    tx.to = 2;
    source.commit_block({tx}, 0, h);
  }
  ASSERT_EQ(source.ledger().height(), 600u);
  target.request_sync(0);
  simulation.run_until(simulation.now() + sim::sec(2));
  EXPECT_EQ(target.ledger().height(), 600u);
  EXPECT_EQ(target.ledger().tx_count(), 600u);
  EXPECT_EQ(target.accounts().next_nonce(1), 600u);
}

TEST(SyncBoundaries, SyncIsIdempotentUnderConcurrentRequests) {
  sim::Simulation simulation(3);
  net::Network network(simulation, net::LatencyConfig{});
  chain::NodeConfig config;
  config.n = 3;
  config.network_seed = 9;
  config.id = 0;
  StubNode source(simulation, network, config);
  config.id = 1;
  StubNode other(simulation, network, config);
  config.id = 2;
  StubNode target(simulation, network, config);
  source.start();
  other.start();
  target.start();
  simulation.run_until(sim::ms(100));
  for (std::uint64_t h = 0; h < 50; ++h) {
    chain::Transaction tx;
    tx.id = 1000 + h;
    tx.from = 1;
    tx.nonce = h;
    tx.amount = 1;
    tx.to = 2;
    source.commit_block({tx}, 0, h);
    other.commit_block({tx}, 0, h);
  }
  // Ask both replicas at once: responses overlap; the ledger must not
  // double-apply or fork.
  target.request_sync(0);
  target.request_sync(1);
  simulation.run_until(simulation.now() + sim::sec(2));
  EXPECT_EQ(target.ledger().height(), 50u);
  EXPECT_EQ(target.ledger().tx_count(), 50u);
}

// ------------------------------------------------- Solana EAH boundary

void run_solana_kill_at(double kill_s, bool expect_panic) {
  Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 41;
  harness.nodes = solana::make_cluster(harness.simulation, harness.network,
                                       node_config);
  harness.add_clients(5, 40.0, sim::sec(250));
  harness.start_all();
  harness.simulation.run_until(sim::seconds(kill_s));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->kill();
  // Epoch 3 integrates the EAH at slot 416 = 166.4 s.
  harness.simulation.run_until(sim::sec(175));
  const auto& node =
      static_cast<const solana::SolanaNode&>(*harness.nodes[0]);
  EXPECT_EQ(node.panicked(), expect_panic) << "kill at " << kill_s << "s";
}

TEST(SolanaEahBoundary, QuorumLossBeforeTheWindowPanics) {
  // Rooting stops 50 slots behind the tip; killing at 133 s leaves the
  // last root short of the 115.2 s window start => panic at 166.4 s.
  run_solana_kill_at(133.0, /*expect_panic=*/true);
}

TEST(SolanaEahBoundary, QuorumLossAfterTheWindowOpenedSurvivesThisEpoch) {
  // Killing late enough that a bank *inside* the window already rooted
  // (root lag 50 slots = 20 s past the 115.2 s window start) means the
  // EAH was computed: no panic at this epoch's integration point.
  run_solana_kill_at(150.0, /*expect_panic=*/false);
}

TEST(SolanaEahBoundary, HealthyClusterNeverPanics) {
  Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 41;
  harness.nodes = solana::make_cluster(harness.simulation, harness.network,
                                       node_config);
  harness.add_clients(5, 40.0, sim::sec(400));
  harness.start_all();
  harness.simulation.run_until(sim::sec(400));
  for (const auto& node : harness.nodes) {
    EXPECT_FALSE(
        static_cast<const solana::SolanaNode&>(*node).panicked());
    EXPECT_TRUE(node->alive());
  }
}

}  // namespace
}  // namespace stabl
