// Tests for the machine-readable output (CSV rows and JSON documents).
#include "core/serialize.hpp"

#include <gtest/gtest.h>

namespace stabl::core {
namespace {

SensitivityRun sample_run() {
  SensitivityRun run;
  run.baseline.submitted = 100;
  run.baseline.committed = 99;
  run.baseline.mean_latency_s = 1.25;
  run.baseline.live_at_end = true;
  run.baseline.throughput = {10.0, 20.0, 30.0};
  run.altered.submitted = 100;
  run.altered.committed = 80;
  run.altered.mean_latency_s = 4.5;
  run.altered.live_at_end = true;
  run.altered.recovery_seconds = 7.0;
  run.altered.throughput = {10.0, 0.0, 60.0};
  run.score.value = 3.25;
  return run;
}

TEST(SerializeCsv, HeaderAndRowAlign) {
  const std::string header = summary_csv_header();
  const std::string row =
      summary_csv_row(ChainKind::kRedbelly, FaultType::kTransient,
                      sample_run());
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_NE(row.find("redbelly,transient,3.2500,0,1,7.00"),
            std::string::npos);
}

TEST(SerializeCsv, InfiniteScore) {
  SensitivityRun run = sample_run();
  run.score.infinite = true;
  run.score.value = std::numeric_limits<double>::infinity();
  run.altered.live_at_end = false;
  const std::string row =
      summary_csv_row(ChainKind::kSolana, FaultType::kPartition, run);
  EXPECT_NE(row.find("solana,partition,inf,0,0"), std::string::npos);
}

TEST(SerializeCsv, ThroughputSeries) {
  const std::string csv = throughput_csv(sample_run().altered);
  EXPECT_NE(csv.find("second,tps\n"), std::string::npos);
  EXPECT_NE(csv.find("0,10\n"), std::string::npos);
  EXPECT_NE(csv.find("2,60\n"), std::string::npos);
}

TEST(SerializeJson, ContainsAllSections) {
  const std::string json =
      to_json(ChainKind::kAptos, FaultType::kSecureClient, sample_run());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"chain\":\"aptos\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\":\"secure-client\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"altered\":{"), std::string::npos);
  EXPECT_NE(json.find("\"score\":3.250000"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\":[10,0,60]"), std::string::npos);
}

TEST(SerializeJson, InfiniteScoreIsQuoted) {
  SensitivityRun run = sample_run();
  run.score.infinite = true;
  const std::string json =
      to_json(ChainKind::kAvalanche, FaultType::kTransient, run);
  EXPECT_NE(json.find("\"score\":\"inf\""), std::string::npos);
}

TEST(SerializeJson, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace stabl::core
