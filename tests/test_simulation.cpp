#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stabl::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation simulation(1);
  EXPECT_EQ(simulation.now(), Time{0});
  EXPECT_EQ(simulation.events_processed(), 0u);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation simulation(1);
  simulation.schedule_after(ms(50), [] {});
  simulation.schedule_after(ms(150), [] {});
  EXPECT_TRUE(simulation.step());
  EXPECT_EQ(simulation.now(), ms(50));
  EXPECT_TRUE(simulation.step());
  EXPECT_EQ(simulation.now(), ms(150));
  EXPECT_FALSE(simulation.step());
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation simulation(1);
  int fired = 0;
  simulation.schedule_after(ms(10), [&] { ++fired; });
  simulation.schedule_after(ms(100), [&] { ++fired; });
  simulation.schedule_after(ms(200), [&] { ++fired; });
  simulation.run_until(ms(100));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulation.now(), ms(100));
  // The 200ms event survives for a later run.
  simulation.run_until(ms(300));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(simulation.now(), ms(300));
}

TEST(Simulation, RunUntilAdvancesClockWhenIdle) {
  Simulation simulation(1);
  simulation.run_until(sec(5));
  EXPECT_EQ(simulation.now(), sec(5));
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation simulation(1);
  std::vector<Time> fire_times;
  simulation.schedule_after(ms(10), [&] {
    fire_times.push_back(simulation.now());
    simulation.schedule_after(ms(10), [&] {
      fire_times.push_back(simulation.now());
    });
  });
  simulation.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], ms(10));
  EXPECT_EQ(fire_times[1], ms(20));
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation simulation(1);
  simulation.schedule_after(ms(100), [&] {
    // Scheduling "in the past" runs immediately after the current event.
    simulation.schedule_at(ms(1), [&] {
      EXPECT_EQ(simulation.now(), ms(100));
    });
  });
  simulation.run();
  EXPECT_EQ(simulation.events_processed(), 2u);
}

TEST(Simulation, NegativeDelayClamps) {
  Simulation simulation(1);
  bool fired = false;
  simulation.schedule_after(ms(-5), [&] { fired = true; });
  simulation.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(simulation.now(), Time{0});
}

TEST(Simulation, CancelScheduled) {
  Simulation simulation(1);
  bool fired = false;
  const TimerId id = simulation.schedule_after(ms(10), [&] { fired = true; });
  simulation.cancel(id);
  simulation.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, EventCountTracksExecution) {
  Simulation simulation(1);
  for (int i = 0; i < 25; ++i) simulation.schedule_after(ms(i), [] {});
  simulation.run();
  EXPECT_EQ(simulation.events_processed(), 25u);
}

TEST(FormatTime, RendersSeconds) {
  EXPECT_EQ(format_time(ms(1500)), "1.500s");
  EXPECT_EQ(format_time(Time{0}), "0.000s");
}

}  // namespace
}  // namespace stabl::sim
