#include "net/connection.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace stabl::net {
namespace {

struct Marker final : Payload {
  explicit Marker(int v) : value(v) {}
  int value;
};

/// A minimal host process with a connection manager, standing in for a
/// blockchain node.
class Host final : public sim::Process, public Endpoint {
 public:
  Host(sim::Simulation& simulation, Network& network, NodeId id,
       std::vector<NodeId> peers, ConnectionPolicy policy)
      : Process(simulation, id),
        connections(*this, network, id, std::move(peers), policy,
                    ConnectionManager::Callbacks{
                        [this](NodeId peer) { ups.push_back(peer); },
                        [this](NodeId peer) { downs.push_back(peer); }}) {
    network.attach(id, this);
  }

  void deliver(const Envelope& envelope) override {
    if (connections.handle(envelope)) return;
    data.push_back(envelope);
  }
  [[nodiscard]] bool endpoint_alive() const override { return alive(); }

  ConnectionManager connections;
  std::vector<NodeId> ups;
  std::vector<NodeId> downs;
  std::vector<Envelope> data;

 protected:
  void on_start() override { connections.start(); }
  void on_crash() override { connections.stop(); }
};

ConnectionPolicy fast_policy() {
  ConnectionPolicy policy;
  policy.tick = sim::ms(100);
  policy.keepalive_interval = sim::ms(500);
  policy.dead_after = sim::sec(2);
  policy.dial_timeout = sim::ms(800);
  policy.retry_period = sim::sec(5);
  policy.retry_jitter_frac = 0.0;
  return policy;
}

class ConnectionTest : public ::testing::Test {
 protected:
  ConnectionTest() : simulation(1), network(simulation, LatencyConfig{}) {
    for (NodeId id = 0; id < 3; ++id) {
      std::vector<NodeId> peers;
      for (NodeId p = 0; p < 3; ++p) {
        if (p != id) peers.push_back(p);
      }
      hosts.push_back(std::make_unique<Host>(simulation, network, id, peers,
                                             fast_policy()));
    }
  }

  void start_all() {
    for (auto& host : hosts) host->start();
  }

  sim::Simulation simulation;
  Network network;
  std::vector<std::unique_ptr<Host>> hosts;
};

TEST_F(ConnectionTest, DialsEstablishBothSides) {
  start_all();
  simulation.run_until(sim::sec(1));
  for (const auto& host : hosts) {
    EXPECT_EQ(host->connections.connected_count(), 2u);
  }
  EXPECT_EQ(hosts[0]->ups.size(), 2u);
}

TEST_F(ConnectionTest, SendOverEstablishedConnection) {
  start_all();
  simulation.run_until(sim::sec(1));
  EXPECT_TRUE(hosts[0]->connections.send(1, std::make_shared<const Marker>(5)));
  simulation.run_until(sim::sec(2));
  ASSERT_EQ(hosts[1]->data.size(), 1u);
}

TEST_F(ConnectionTest, SendFailsWhenDown) {
  start_all();
  // No simulation time has elapsed: still dialing.
  EXPECT_FALSE(
      hosts[0]->connections.send(1, std::make_shared<const Marker>(5)));
}

TEST_F(ConnectionTest, CrashTriggersRstDetection) {
  start_all();
  simulation.run_until(sim::sec(1));
  hosts[1]->kill();
  // Next keepalive to the dead process draws an RST.
  simulation.run_until(sim::sec(3));
  EXPECT_FALSE(hosts[0]->connections.connected(1));
  EXPECT_FALSE(hosts[0]->downs.empty());
  EXPECT_TRUE(hosts[0]->connections.connected(2));
}

TEST_F(ConnectionTest, RestartReconnectsActively) {
  start_all();
  simulation.run_until(sim::sec(1));
  hosts[1]->kill();
  simulation.run_until(sim::sec(4));
  ASSERT_FALSE(hosts[0]->connections.connected(1));
  hosts[1]->start();  // restarted process dials out immediately
  simulation.run_until(sim::sec(5));
  EXPECT_TRUE(hosts[0]->connections.connected(1));
  EXPECT_TRUE(hosts[1]->connections.connected(0));
}

TEST_F(ConnectionTest, PartitionDetectedPassively) {
  start_all();
  simulation.run_until(sim::sec(1));
  network.add_partition({1}, {0, 2});
  // Detection needs dead_after (2 s) of silence.
  simulation.run_until(sim::sec(2));
  EXPECT_TRUE(hosts[0]->connections.connected(1));
  simulation.run_until(sim::sec(5));
  EXPECT_FALSE(hosts[0]->connections.connected(1));
  EXPECT_FALSE(hosts[1]->connections.connected(0));
  EXPECT_TRUE(hosts[0]->connections.connected(2));
}

TEST_F(ConnectionTest, PartitionRecoveryWaitsForRedial) {
  start_all();
  simulation.run_until(sim::sec(1));
  const RuleId rule = network.add_partition({1}, {0, 2});
  simulation.run_until(sim::sec(8));
  ASSERT_FALSE(hosts[0]->connections.connected(1));
  network.remove_rule(rule);
  // Reconnection is passive: it waits for the periodic redial (5 s).
  simulation.run_until(sim::sec(9));
  // Shortly after heal, still within a retry period: likely not yet up.
  simulation.run_until(sim::sec(16));
  EXPECT_TRUE(hosts[0]->connections.connected(1));
  EXPECT_TRUE(hosts[1]->connections.connected(0));
}

TEST_F(ConnectionTest, KeepalivesMaintainQuietConnections) {
  start_all();
  // No application traffic at all; keepalives must keep links up.
  simulation.run_until(sim::sec(20));
  for (const auto& host : hosts) {
    EXPECT_EQ(host->connections.connected_count(), 2u);
  }
}

TEST_F(ConnectionTest, ConnectedPeersList) {
  start_all();
  simulation.run_until(sim::sec(1));
  const auto peers = hosts[0]->connections.connected_peers();
  EXPECT_EQ(peers.size(), 2u);
  hosts[2]->kill();
  simulation.run_until(sim::sec(3));
  const auto after = hosts[0]->connections.connected_peers();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], 1u);
}

}  // namespace
}  // namespace stabl::net
