// Parameterized sweep over connection policies: the partition-recovery
// arithmetic (detection after dead_after, redial every retry_period) that
// produces the paper's chain-specific recovery times must hold for any
// sane policy, not just the calibrated ones.
#include <gtest/gtest.h>

#include <memory>

#include "net/connection.hpp"

namespace stabl::net {
namespace {

class Host final : public sim::Process, public Endpoint {
 public:
  Host(sim::Simulation& simulation, Network& network, NodeId id,
       std::vector<NodeId> peers, ConnectionPolicy policy)
      : Process(simulation, id),
        connections(*this, network, id, std::move(peers), policy,
                    ConnectionManager::Callbacks{
                        [this](NodeId) { ++ups; },
                        [this](NodeId) { ++downs; }}) {
    network.attach(id, this);
  }
  void deliver(const Envelope& envelope) override {
    connections.handle(envelope);
  }
  [[nodiscard]] bool endpoint_alive() const override { return alive(); }

  ConnectionManager connections;
  int ups = 0;
  int downs = 0;

 protected:
  void on_start() override { connections.start(); }
  void on_crash() override { connections.stop(); }
};

struct PolicyCase {
  int dead_after_s;
  int retry_period_s;
};

class PolicySweep : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicySweep, PartitionRecoveryFollowsTheRedialSchedule) {
  const PolicyCase param = GetParam();
  sim::Simulation simulation(3);
  Network network(simulation, LatencyConfig{});
  ConnectionPolicy policy;
  policy.tick = sim::ms(250);
  policy.keepalive_interval = sim::sec(1);
  policy.dead_after = sim::sec(param.dead_after_s);
  policy.dial_timeout = sim::sec(2);
  policy.retry_period = sim::sec(param.retry_period_s);
  policy.retry_jitter_frac = 0.0;

  Host a(simulation, network, 0, {1}, policy);
  Host b(simulation, network, 1, {0}, policy);
  a.start();
  b.start();
  simulation.run_until(sim::sec(2));
  ASSERT_TRUE(a.connections.connected(1));

  // Partition at t=10 for `hold` seconds, chosen to span at least one
  // failed redial cycle.
  const int hold = param.dead_after_s + param.retry_period_s + 4;
  const RuleId rule = network.add_partition({0}, {1});
  simulation.run_until(sim::sec(10) + sim::sec(hold));
  EXPECT_FALSE(a.connections.connected(1))
      << "break must be detected within dead_after + slack";
  network.remove_rule(rule);

  // Reconnection must happen within one full retry period plus dial time.
  simulation.run_until(sim::sec(10) + sim::sec(hold) +
                       sim::sec(param.retry_period_s) + sim::sec(4));
  EXPECT_TRUE(a.connections.connected(1));
  EXPECT_TRUE(b.connections.connected(0));
}

TEST_P(PolicySweep, DetectionNeverBeatsDeadAfter) {
  const PolicyCase param = GetParam();
  sim::Simulation simulation(5);
  Network network(simulation, LatencyConfig{});
  ConnectionPolicy policy;
  policy.tick = sim::ms(250);
  policy.keepalive_interval = sim::sec(1);
  policy.dead_after = sim::sec(param.dead_after_s);
  policy.dial_timeout = sim::sec(2);
  policy.retry_period = sim::sec(param.retry_period_s);
  policy.retry_jitter_frac = 0.0;

  Host a(simulation, network, 0, {1}, policy);
  Host b(simulation, network, 1, {0}, policy);
  a.start();
  b.start();
  simulation.run_until(sim::sec(2));
  network.add_partition({0}, {1});
  // Strictly before the silence threshold, the link must still count as up.
  simulation.run_until(sim::sec(2) + sim::sec(param.dead_after_s) -
                       sim::ms(600));
  EXPECT_TRUE(a.connections.connected(1));
  // Well after the threshold (plus a tick), it must be down.
  simulation.run_until(sim::sec(2) + sim::sec(param.dead_after_s) +
                       sim::sec(2));
  EXPECT_FALSE(a.connections.connected(1));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Values(PolicyCase{4, 6}, PolicyCase{6, 10},
                      PolicyCase{10, 20}, PolicyCase{10, 40},
                      PolicyCase{20, 15}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return "dead" + std::to_string(info.param.dead_after_s) + "_retry" +
             std::to_string(info.param.retry_period_s);
    });

TEST(ConnectionPolicyDefaults, ChainsUseThePaperDerivedKnobs) {
  // Guard the calibration: these constants produce the paper's recovery
  // times (Algorand ~99 s, Redbelly ~81 s via MaxIdleTime, Aptos ~5 s).
  ConnectionPolicy defaults;
  EXPECT_EQ(defaults.dead_after, sim::sec(10));
  EXPECT_EQ(defaults.dial_timeout, sim::sec(5));
  EXPECT_GT(defaults.retry_period, sim::sec(0));
}

}  // namespace
}  // namespace stabl::net
