// Production traffic model (core/traffic.hpp): preset layering, strict
// validation, deterministic population assignment, scenario round trips,
// and the property the layer exists for — hot-key contention measurably
// degrading the chains whose execution/ordering model it stresses.
#include "core/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------------ names and presets

TEST(Traffic, ShapeNamesRoundTripThroughParseAndToString) {
  for (const std::string& name : workload_shape_names()) {
    EXPECT_EQ(to_string(parse_workload_shape(name)), name);
    EXPECT_FALSE(workload_shape_description(name).empty()) << name;
  }
}

TEST(Traffic, UnknownShapeErrorListsTheValidNames) {
  try {
    (void)parse_workload_shape("spiky");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("spiky"), std::string::npos) << what;
    EXPECT_NE(what.find("constant, bursty, ramp, diurnal, flash"),
              std::string::npos)
        << what;
  }
}

TEST(Traffic, UnknownPresetErrorListsTheValidNames) {
  try {
    (void)traffic_preset("flash_sale");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("exchange_burst, nft_mint, dex_sustained"),
              std::string::npos)
        << what;
  }
}

TEST(Traffic, EveryPresetIsValidAndDescribed) {
  for (const std::string& name : traffic_preset_names()) {
    TrafficSpec spec = traffic_preset(name);
    EXPECT_EQ(validate_traffic(spec), "") << name;
    EXPECT_FALSE(traffic_preset_description(name).empty()) << name;
    // Each preset departs from the legacy population on at least one axis.
    EXPECT_TRUE(resolve_traffic(spec).active()) << name;
  }
}

TEST(Traffic, PresetFillsDefaultsButExplicitKnobsWin) {
  TrafficSpec spec;
  spec.preset = "exchange_burst";
  spec.hot_fraction = 0.5;  // explicit: must survive the preset
  apply_traffic_preset(spec);
  EXPECT_EQ(spec.shape, "flash");           // filled from the preset
  EXPECT_EQ(spec.accounts_per_client, 32);  // filled from the preset
  EXPECT_DOUBLE_EQ(spec.hot_fraction, 0.5);
  EXPECT_EQ(spec.fault_phase, "burst");
}

// ------------------------------------------------------------- validation

TEST(Traffic, ValidationRejectsOutOfRangeKnobsWithTheFieldName) {
  TrafficSpec spec;
  spec.hot_fraction = 1.5;
  EXPECT_NE(validate_traffic(spec).find("\"traffic.hot_fraction\""),
            std::string::npos);
  spec = TrafficSpec{};
  spec.accounts_per_client = 0;
  EXPECT_NE(validate_traffic(spec).find("\"traffic.accounts_per_client\""),
            std::string::npos);
  spec = TrafficSpec{};
  spec.shape = "spiky";
  const std::string what = validate_traffic(spec);
  EXPECT_NE(what.find("\"traffic.shape\""), std::string::npos);
  EXPECT_NE(what.find("constant, bursty, ramp, diurnal, flash"),
            std::string::npos);
  spec = TrafficSpec{};
  spec.preset = "mystery";
  EXPECT_NE(validate_traffic(spec).find(
                "exchange_burst, nft_mint, dex_sustained"),
            std::string::npos);
  spec = TrafficSpec{};
  spec.fault_phase = "lull";
  EXPECT_NE(validate_traffic(spec).find("steady or burst"),
            std::string::npos);
}

// ------------------------------------------------- population determinism

TEST(Traffic, ClientPlansAreDeterministicAndDisjoint) {
  TrafficConfig config;
  config.accounts_per_client = 8;
  config.zipf_exponent = 1.2;
  config.regions = 3;
  TrafficModel model(config);
  const ClientTrafficPlan first = make_client_plan(config, model, 0, 42);
  const ClientTrafficPlan again = make_client_plan(config, model, 0, 42);
  EXPECT_EQ(first.accounts, again.accounts);
  EXPECT_EQ(first.zipf_cdf, again.zipf_cdf);
  EXPECT_EQ(first.rng_seed, again.rng_seed);

  const ClientTrafficPlan second = make_client_plan(config, model, 1, 42);
  EXPECT_NE(first.rng_seed, second.rng_seed);
  EXPECT_EQ(first.region, 0u);
  EXPECT_EQ(second.region, 1u);
  EXPECT_EQ(make_client_plan(config, model, 3, 42).region, 0u);  // 3 % 3
  // Account ranges never overlap between clients.
  for (const chain::AccountId account : first.accounts) {
    EXPECT_EQ(std::count(second.accounts.begin(), second.accounts.end(),
                         account),
              0);
  }
  ASSERT_EQ(first.accounts.size(), 8u);
  ASSERT_EQ(first.zipf_cdf.size(), 8u);
  // The CDF is monotone and normalized; the head is the whale.
  EXPECT_TRUE(std::is_sorted(first.zipf_cdf.begin(), first.zipf_cdf.end()));
  EXPECT_DOUBLE_EQ(first.zipf_cdf.back(), 1.0);
  EXPECT_GT(first.zipf_cdf.front(), 1.0 / 8.0);
}

TEST(Traffic, ZipfPickCoversTheWholeSupport) {
  TrafficConfig config;
  config.accounts_per_client = 4;
  config.zipf_exponent = 1.0;
  TrafficModel model(config);
  const ClientTrafficPlan plan = make_client_plan(config, model, 0, 7);
  EXPECT_EQ(zipf_pick(plan.zipf_cdf, 0.0), 0u);
  EXPECT_EQ(zipf_pick(plan.zipf_cdf, plan.zipf_cdf[0] - 1e-12), 0u);
  EXPECT_EQ(zipf_pick(plan.zipf_cdf, plan.zipf_cdf[0] + 1e-12), 1u);
  EXPECT_EQ(zipf_pick(plan.zipf_cdf, 0.999999999), 3u);
}

TEST(Traffic, HotNoncesAreGloballySequenced) {
  TrafficConfig config;
  config.hot_fraction = 0.3;
  TrafficModel model(config);
  EXPECT_EQ(model.next_hot_nonce(), 0u);
  EXPECT_EQ(model.next_hot_nonce(), 1u);
  EXPECT_EQ(model.next_hot_nonce(), 2u);
  EXPECT_EQ(model.hot_submitted(), 3u);
}

// --------------------------------------------------- scenario round trips

TEST(Traffic, ScenarioWithTrafficRoundTripsByteStably) {
  ScenarioSpec spec;
  spec.chain = "aptos";
  spec.fault = "crash";
  spec.has_traffic = true;
  spec.traffic.preset = "nft_mint";
  spec.traffic.hot_fraction = 0.4;
  const std::string json = scenario_to_json(spec);
  EXPECT_EQ(scenario_from_json(json), spec);
  EXPECT_EQ(scenario_to_json(scenario_from_json(json)), json);
}

TEST(Traffic, TrafficFreeScenarioDumpsNoTrafficObject) {
  const ScenarioSpec spec;
  EXPECT_EQ(scenario_to_json(spec).find("\"traffic\""), std::string::npos);
}

TEST(Traffic, ScenarioRejectsUnknownAndDuplicateTrafficKeys) {
  try {
    (void)scenario_from_json(R"({"traffic": {"hot": 0.3}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("traffic.hot"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW(
      (void)scenario_from_json(
          R"({"traffic": {"regions": 2, "regions": 3}})"),
      std::invalid_argument);
}

TEST(Traffic, ScenarioValidationRejectsBadTrafficValues) {
  try {
    (void)scenario_from_json(R"({"traffic": {"preset": "flash_sale"}})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what())
                  .find("exchange_burst, nft_mint, dex_sustained"),
              std::string::npos)
        << error.what();
  }
}

// ------------------------------------------------------------- resolution

TEST(Traffic, ResolveAppliesPresetShapeAndBurstPhaseWindows) {
  ScenarioSpec spec;
  spec.fault = "crash";
  spec.has_traffic = true;
  spec.traffic.preset = "exchange_burst";
  const ResolvedScenario resolved = resolve_scenario(spec);
  EXPECT_EQ(resolved.config.workload.shape, WorkloadShape::kFlash);
  EXPECT_TRUE(resolved.config.traffic.active());
  EXPECT_EQ(resolved.config.traffic.accounts_per_client, 32u);
  EXPECT_EQ(resolved.config.traffic.regions, 3u);
  // fault_phase "burst": the crash lands centred inside the flash crowd
  // (150 s + 50 s window), not at the historical 133 s / 266 s thirds.
  EXPECT_EQ(resolved.config.inject_at, sim::Duration(sim::sec(150) + sim::sec(50) / 4));
  EXPECT_EQ(resolved.config.recover_at,
            sim::Duration(sim::sec(150) + (3 * sim::sec(50)) / 4));
}

TEST(Traffic, ResolveWithoutTrafficKeepsTheLegacyConfig) {
  ScenarioSpec spec;
  spec.fault = "crash";
  const ResolvedScenario resolved = resolve_scenario(spec);
  EXPECT_FALSE(resolved.config.traffic.active());
  EXPECT_EQ(resolved.config.inject_at, sim::sec(133));
  EXPECT_EQ(resolved.config.recover_at, sim::sec(266));
}

// -------------------------------------------- measured hot-key contention

// Block-STM's optimistic parallelism collapses on a contended key: every
// hot transaction in a block past the first costs a conflict re-execution.
// The sweep must show the counter firing and the throughput/latency cost
// growing with the hot fraction — and the counter absent when contention
// is off (elide-when-zero keeps legacy reports byte-identical).
TEST(Traffic, HotKeyContentionDegradesAptosBlockStm) {
  auto run_with = [](double hot_fraction) {
    ExperimentConfig config;
    config.chain = ChainKind::kAptos;
    config.duration = sim::sec(60);
    config.traffic.accounts_per_client = 4;
    config.traffic.hot_fraction = hot_fraction;
    return run_experiment(config);
  };
  const ExperimentResult cold = run_with(0.0);
  const ExperimentResult hot = run_with(0.6);
  EXPECT_EQ(cold.chain_metrics.count("stm_conflict_reexecs"), 0u);
  ASSERT_EQ(hot.chain_metrics.count("stm_conflict_reexecs"), 1u);
  EXPECT_GT(hot.chain_metrics.at("stm_conflict_reexecs"), 1000.0);
  EXPECT_GT(hot.mean_latency_s, cold.mean_latency_s * 1.05);
  EXPECT_LE(hot.committed, cold.committed);
  std::printf("[aptos hot-key] hot=0.0 committed=%llu mean=%.3fs | "
              "hot=0.6 committed=%llu mean=%.3fs reexecs=%.0f\n",
              static_cast<unsigned long long>(cold.committed),
              cold.mean_latency_s,
              static_cast<unsigned long long>(hot.committed),
              hot.mean_latency_s,
              hot.chain_metrics.at("stm_conflict_reexecs"));
}

// Avalanche gossips transactions out of an unordered pool, so the shared
// hot wallet's globally-sequenced nonces arrive at proposers with gaps:
// lower nonces seeded at other entry nodes haven't gossiped over yet, and
// everything behind the gap is unproposable. The stall counter must fire
// and throughput must drop against the contention-free twin.
TEST(Traffic, HotKeyContentionStallsAvalancheNonceOrdering) {
  auto run_with = [](double hot_fraction) {
    ExperimentConfig config;
    config.chain = ChainKind::kAvalanche;
    config.duration = sim::sec(60);
    config.traffic.accounts_per_client = 4;
    config.traffic.hot_fraction = hot_fraction;
    return run_experiment(config);
  };
  const ExperimentResult cold = run_with(0.0);
  const ExperimentResult hot = run_with(0.5);
  EXPECT_EQ(cold.chain_metrics.count("hot_nonce_stalls"), 0u);
  ASSERT_EQ(hot.chain_metrics.count("hot_nonce_stalls"), 1u);
  EXPECT_GT(hot.chain_metrics.at("hot_nonce_stalls"), 100.0);
  EXPECT_LT(hot.committed, cold.committed);
  std::printf("[avalanche hot-key] hot=0.0 committed=%llu mean=%.3fs | "
              "hot=0.5 committed=%llu mean=%.3fs stalls=%.0f\n",
              static_cast<unsigned long long>(cold.committed),
              cold.mean_latency_s,
              static_cast<unsigned long long>(hot.committed),
              hot.mean_latency_s,
              hot.chain_metrics.at("hot_nonce_stalls"));
}

// Regions map onto extra client->cluster link latency: a spread population
// keeps committing, and its observed commit latency rises with distance.
TEST(Traffic, RegionSpreadRaisesObservedLatency) {
  auto run_with = [](std::size_t regions, double spread_ms) {
    ExperimentConfig config;
    config.chain = ChainKind::kRedbelly;
    config.duration = sim::sec(60);
    config.traffic.accounts_per_client = 2;  // activates the population
    config.traffic.regions = regions;
    config.traffic.region_spread = sim::ms(spread_ms);
    return run_experiment(config);
  };
  const ExperimentResult near = run_with(1, 0.0);
  const ExperimentResult spread = run_with(3, 400.0);
  EXPECT_GT(near.committed, 10000u);
  EXPECT_GT(spread.committed, 10000u);
  EXPECT_GT(spread.mean_latency_s, near.mean_latency_s + 0.1);
}

}  // namespace
}  // namespace stabl::core
