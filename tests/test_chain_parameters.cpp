// Parameter-response properties of the protocol models: the knobs the
// paper discusses must move latency/throughput in the physically sensible
// direction. Property-style sweeps (TEST_P) per chain.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "chains/algorand/algorand.hpp"
#include "chains/aptos/aptos.hpp"
#include "chains/avalanche/avalanche.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "chains/solana/solana.hpp"

namespace stabl {
namespace {

using testing::Harness;

template <typename MakeCluster, typename Config>
double mean_latency(MakeCluster make, Config config, double tps = 40.0,
                    int run_s = 40) {
  Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 23;
  harness.nodes = make(harness.simulation, harness.network, node_config,
                       config);
  harness.add_clients(5, tps, sim::sec(run_s));
  harness.start_all();
  harness.simulation.run_until(sim::sec(run_s + 5));
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& client : harness.clients) {
    for (const double latency : client->latencies()) {
      sum += latency;
      ++count;
    }
  }
  return count == 0 ? 1e9 : sum / static_cast<double>(count);
}

// ------------------------------------------------------------- Avalanche

class AvalancheBetaSweep : public ::testing::TestWithParam<int> {};

TEST_P(AvalancheBetaSweep, MoreConsecutiveSuccessesCostLatency) {
  avalanche::AvalancheConfig low;
  low.beta = 4;
  avalanche::AvalancheConfig high;
  high.beta = GetParam();
  const double fast = mean_latency(avalanche::make_cluster, low);
  const double slow = mean_latency(avalanche::make_cluster, high);
  EXPECT_LT(fast, slow + 0.35)
      << "beta " << GetParam() << " cannot be meaningfully faster than 4";
}

INSTANTIATE_TEST_SUITE_P(Betas, AvalancheBetaSweep,
                         ::testing::Values(8, 12, 16));

TEST(AvalancheParameters, BiggerBlockIntervalMeansFewerBlocks) {
  avalanche::AvalancheConfig fast;
  fast.block_interval = sim::sec(1);
  avalanche::AvalancheConfig slow;
  slow.block_interval = sim::sec(4);
  Harness a;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 23;
  a.nodes = avalanche::make_cluster(a.simulation, a.network, node_config,
                                    fast);
  a.add_clients(5, 40.0, sim::sec(40));
  a.start_all();
  a.simulation.run_until(sim::sec(40));
  Harness b;
  b.nodes = avalanche::make_cluster(b.simulation, b.network, node_config,
                                    slow);
  b.add_clients(5, 40.0, sim::sec(40));
  b.start_all();
  b.simulation.run_until(sim::sec(40));
  EXPECT_GT(a.nodes[0]->ledger().height(),
            b.nodes[0]->ledger().height() + 5);
}

// ----------------------------------------------------------------- Aptos

class AptosBlockCapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AptosBlockCapSweep, UndersizedBlocksBacklogTheWorkload) {
  // Below the offered per-round load, the mempool backlog grows and the
  // mean latency blows up; above it, latency stays sub-second.
  aptos::AptosConfig config;
  config.max_block_txs = GetParam();
  const double latency = mean_latency(aptos::make_cluster, config);
  // ~200 TPS at ~3 rounds/s needs ~70 txs per block to keep up.
  if (GetParam() < 40) {
    EXPECT_GT(latency, 2.0) << "cap " << GetParam() << " must congest";
  } else if (GetParam() >= 120) {
    EXPECT_LT(latency, 1.0) << "cap " << GetParam() << " must keep up";
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, AptosBlockCapSweep,
                         ::testing::Values(20u, 30u, 120u, 240u));

TEST(AptosParameters, LongerTimeoutSlowsDeadLeaderRecovery) {
  aptos::AptosConfig quick;
  quick.round_timeout = sim::ms(300);
  aptos::AptosConfig slow;
  slow.round_timeout = sim::ms(1500);
  auto run = [](const aptos::AptosConfig& config) {
    Harness harness;
    chain::NodeConfig node_config;
    node_config.n = 10;
    node_config.network_seed = 23;
    harness.nodes = aptos::make_cluster(harness.simulation,
                                        harness.network, node_config,
                                        config);
    harness.add_clients(5, 40.0, sim::sec(50));
    harness.start_all();
    harness.simulation.run_until(sim::sec(10));
    harness.nodes[7]->kill();
    harness.simulation.run_until(sim::sec(50));
    return harness.total_client_committed();
  };
  EXPECT_GT(run(quick), run(slow));
}

// ---------------------------------------------------------------- Solana

class SolanaSlotSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolanaSlotSweep, LongerSlotsRaiseLatency) {
  solana::SolanaConfig fast;
  fast.slot_duration = sim::ms(200);
  solana::SolanaConfig slow;
  slow.slot_duration = sim::ms(GetParam());
  EXPECT_LT(mean_latency(solana::make_cluster, fast),
            mean_latency(solana::make_cluster, slow) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Slots, SolanaSlotSweep,
                         ::testing::Values(400, 800, 1600));

TEST(SolanaParameters, SlotCapacityBoundsThroughput) {
  solana::SolanaConfig tiny;
  tiny.max_slot_txs = 20;  // 50 TPS capacity at 400 ms slots
  Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 23;
  harness.nodes = solana::make_cluster(harness.simulation, harness.network,
                                       node_config, tiny);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(40));
  // 200 TPS offered, ~50 TPS served.
  EXPECT_LT(harness.nodes[0]->ledger().tx_count(), 2600u);
  EXPECT_GT(harness.nodes[0]->ledger().tx_count(), 1500u);
}

// -------------------------------------------------------------- Redbelly

class RedbellyWindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(RedbellyWindowSweep, WiderProposalWindowsRaiseLatency) {
  redbelly::RedbellyConfig narrow;
  narrow.proposal_window = sim::ms(200);
  redbelly::RedbellyConfig wide;
  wide.proposal_window = sim::ms(GetParam());
  EXPECT_LT(mean_latency(redbelly::make_cluster, narrow),
            mean_latency(redbelly::make_cluster, wide) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Windows, RedbellyWindowSweep,
                         ::testing::Values(400, 800, 1600));

// -------------------------------------------------------------- Algorand

TEST(AlgorandParameters, LowerFilterFloorSpeedsSteadyState) {
  algorand::AlgorandConfig low;
  low.min_filter_wait = sim::ms(400);
  algorand::AlgorandConfig high;
  high.min_filter_wait = sim::ms(1600);
  // Long enough for the dynamic round time to reach its floor.
  const double fast = mean_latency(algorand::make_cluster, low, 40.0, 120);
  const double slow = mean_latency(algorand::make_cluster, high, 40.0, 120);
  EXPECT_LT(fast, slow);
}

TEST(AlgorandParameters, BiggerBatchesAbsorbBursts) {
  algorand::AlgorandConfig small;
  small.max_batch = 150;  // ~60 TPS at ~2.5 s rounds: undersized
  const double congested =
      mean_latency(algorand::make_cluster, small, 40.0, 60);
  algorand::AlgorandConfig big;
  big.max_batch = 5000;
  const double healthy = mean_latency(algorand::make_cluster, big, 40.0, 60);
  EXPECT_GT(congested, healthy + 1.0);
}

}  // namespace
}  // namespace stabl
