// The nversion meta-chain plugin (chains/nversion): registry derivation
// with inherited parameters, the health monitor's missed-heartbeat and
// stalled-commit detectors, end-to-end crash masking through the full
// experiment runner, the standby-budget limit, and the paired mitigation
// campaign — including byte-identical output across --jobs settings.
#include "chains/nversion/nversion.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chain_test_util.hpp"
#include "core/campaign.hpp"
#include "core/experiment.hpp"

namespace stabl {
namespace {

using testing::Harness;

const chain::ChainTraits& traits_of(const std::string& name) {
  nversion::ensure_registered();
  return core::chain_traits(core::parse_chain_name(name));
}

// ----------------------------------------------------------- registration

TEST(NVersion, FiveDerivedChainsRegisterAsMetaChains) {
  for (const std::string base :
       {"algorand", "aptos", "avalanche", "redbelly", "solana"}) {
    const chain::ChainTraits& derived = traits_of("nversion_" + base);
    const chain::ChainTraits& original = traits_of(base);
    EXPECT_EQ(derived.meta_of, base);
    EXPECT_EQ(derived.tier, 1);
    ASSERT_TRUE(derived.make_services != nullptr);
    // The derived parameter map is a strict superset of the base chain's
    // (so scenario overrides written for the base chain keep working) plus
    // the monitor knobs.
    for (const auto& [key, value] : original.default_params) {
      ASSERT_TRUE(derived.default_params.count(key) == 1)
          << base << " key " << key;
      EXPECT_DOUBLE_EQ(derived.default_params.at(key), value);
    }
    EXPECT_DOUBLE_EQ(derived.default_params.at("nversion_versions"), 3.0);
    EXPECT_DOUBLE_EQ(derived.default_params.at("nversion_check_ms"), 500.0);
    // Same tolerance formula as the base chain.
    EXPECT_EQ(derived.fault_tolerance(10), original.fault_tolerance(10));
  }
}

TEST(NVersion, MonitorConfigDecodesParams) {
  const chain::ChainTraits& derived = traits_of("nversion_redbelly");
  chain::ChainParams params = derived.default_params;
  params["nversion_versions"] = 5.0;
  params["nversion_check_ms"] = 250.0;
  params["nversion_missed_heartbeats"] = 2.0;
  params["nversion_stall_s"] = 12.0;
  params["nversion_failover_boot_ms"] = 100.0;
  const nversion::MonitorConfig config =
      nversion::monitor_config_from_params(params);
  EXPECT_EQ(config.versions, 5u);
  EXPECT_EQ(config.check_period, sim::ms(250));
  EXPECT_EQ(config.missed_heartbeats, 2u);
  EXPECT_EQ(config.stall_after, sim::sec(12));
  EXPECT_EQ(config.failover_boot, sim::ms(100));
}

// ------------------------------------------------------- monitor, direct

TEST(NVersion, KilledPrimaryFailsOverWithinHealthCheckWindow) {
  const chain::ChainTraits& traits = traits_of("nversion_redbelly");
  Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 4;
  node_config.network_seed = 77;
  const chain::ChainParams params = traits.default_params;
  harness.nodes = traits.make_cluster(harness.simulation, harness.network,
                                      node_config, params);
  harness.add_clients(2, 20.0, sim::sec(30));

  std::vector<chain::BlockchainNode*> node_ptrs;
  for (const auto& node : harness.nodes) node_ptrs.push_back(node.get());
  auto services = traits.make_services(
      harness.simulation, node_ptrs,
      static_cast<sim::ProcessId>(harness.nodes.size() +
                                  harness.clients.size()),
      params);
  ASSERT_EQ(services.size(), 1u);
  auto* monitor = dynamic_cast<nversion::NVersionMonitor*>(services[0].get());
  ASSERT_NE(monitor, nullptr);

  harness.start_all();
  for (auto& service : services) service->start();

  harness.simulation.run_until(sim::sec(10));
  harness.nodes[3]->kill();
  ASSERT_FALSE(harness.nodes[3]->alive());

  // Detection needs 4 consecutive missed 500 ms heartbeats (last one at
  // t = 12) plus the 250 ms warm-standby boot: recovered well before 13 s.
  harness.simulation.run_until(sim::sec(13));
  EXPECT_TRUE(harness.nodes[3]->alive());
  EXPECT_GE(harness.nodes[3]->restarts(), 1);
  EXPECT_EQ(monitor->failovers(), 1u);
  EXPECT_EQ(monitor->stall_failovers(), 0u);
  EXPECT_EQ(monitor->exhausted(), 0u);

  // The failed-over version rejoins consensus: commits keep flowing.
  harness.simulation.run_until(sim::sec(30));
  EXPECT_GT(harness.nodes[3]->ledger().height(), 0u);
}

// ------------------------------------------------- end-to-end experiments

core::ExperimentConfig nversion_crash_config() {
  core::ExperimentConfig config;
  config.chain = core::parse_chain_name("nversion_redbelly");
  config.fault = core::FaultType::kCrash;
  config.duration = sim::sec(120);
  config.inject_at = sim::sec(40);
  config.recover_at = sim::sec(80);
  return config;
}

TEST(NVersion, CrashFaultIsMaskedEndToEnd) {
  core::ExperimentConfig config = nversion_crash_config();
  config.capture_replicas = true;
  const core::ExperimentResult result = core::run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  // Every crashed version was failed over (redbelly crash default: t = 3
  // targets) and the logical nodes ended the run restored.
  ASSERT_TRUE(result.chain_metrics.count("nversion_failovers") == 1);
  EXPECT_GE(result.chain_metrics.at("nversion_failovers"), 3.0);
  for (const core::ReplicaSnapshot& replica : result.replicas) {
    EXPECT_TRUE(replica.alive_at_end) << "node " << replica.id;
  }
}

TEST(NVersion, ExhaustedStandbyBudgetLeavesNodeDown) {
  core::ExperimentConfig config = nversion_crash_config();
  config.capture_replicas = true;
  config.chain_params = {{"nversion_versions", 1.0}};  // no standbys
  const core::ExperimentResult result = core::run_experiment(config);
  // Nothing to fail over to: the monitor notes exhaustion, the crashed
  // nodes stay down, and the failover counter is elided (zero).
  EXPECT_EQ(result.chain_metrics.count("nversion_failovers"), 0u);
  ASSERT_TRUE(result.chain_metrics.count("nversion_exhausted") == 1);
  EXPECT_GE(result.chain_metrics.at("nversion_exhausted"), 3.0);
  std::size_t down = 0;
  for (const core::ReplicaSnapshot& replica : result.replicas) {
    if (!replica.alive_at_end) ++down;
  }
  EXPECT_EQ(down, 3u);
}

TEST(NVersion, StallDetectorCatchesPartitionedVersions) {
  core::ExperimentConfig config;
  config.chain = core::parse_chain_name("nversion_redbelly");
  // Partition 2 nodes (below the default t+1 = 4, so the majority side
  // keeps quorum and advances the frontier the stranded versions trail).
  config.fault = core::FaultType::kPartition;
  config.fault_count = 2;
  config.duration = sim::sec(160);
  config.inject_at = sim::sec(40);
  config.recover_at = sim::sec(120);
  const core::ExperimentResult result = core::run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  ASSERT_TRUE(result.chain_metrics.count("nversion_stall_failovers") == 1);
  EXPECT_GE(result.chain_metrics.at("nversion_stall_failovers"), 1.0);
}

TEST(NVersion, BaselineMatchesTheWrappedChain) {
  // Without faults the monitor only watches: the meta-chain's report is
  // the base chain's report (same commits, same latencies).
  core::ExperimentConfig config;
  config.fault = core::FaultType::kNone;
  config.duration = sim::sec(60);
  config.chain = core::ChainKind::kRedbelly;
  const core::ExperimentResult base = core::run_experiment(config);
  config.chain = core::parse_chain_name("nversion_redbelly");
  const core::ExperimentResult wrapped = core::run_experiment(config);
  EXPECT_EQ(base.committed, wrapped.committed);
  EXPECT_EQ(base.blocks, wrapped.blocks);
  EXPECT_EQ(base.latencies, wrapped.latencies);
}

// ------------------------------------------------- mitigation campaign

TEST(NVersion, MitigationPairMasksCrashSensitivity) {
  core::MitigationConfig config;
  config.chains = {core::ChainKind::kRedbelly};
  config.faults = {core::FaultType::kCrash};
  config.base.duration = sim::sec(120);
  config.base.inject_at = sim::sec(40);
  config.base.recover_at = sim::sec(80);
  const core::MitigationResult result =
      core::run_mitigation_campaign(config);
  ASSERT_EQ(result.pairs.size(), 1u);
  const core::MitigationPair& pair = result.pairs[0];
  EXPECT_EQ(pair.mitigated_chain, "nversion_redbelly");
  EXPECT_TRUE(pair.improved());
  EXPECT_GT(pair.delta(), 0.0);
  EXPECT_GE(pair.mitigated.altered.chain_metrics.at("nversion_failovers"),
            1.0);
  // The hedging layer was live too.
  EXPECT_GT(pair.mitigated.altered.resilience.hedges_armed, 0u);
  EXPECT_EQ(result.improvements(), 1u);
  EXPECT_EQ(result.regressions(), 0u);
}

TEST(NVersion, PairedCampaignByteIdenticalAcrossJobs) {
  core::MitigationConfig config;
  config.chains = {core::ChainKind::kRedbelly, core::ChainKind::kAptos};
  config.faults = {core::FaultType::kCrash};
  config.base.duration = sim::sec(60);
  config.base.inject_at = sim::sec(20);
  config.base.recover_at = sim::sec(40);
  config.chaos_pairs = 1;

  config.jobs = 1;
  const core::MitigationResult serial = core::run_mitigation_campaign(config);
  config.jobs = 4;
  const core::MitigationResult parallel =
      core::run_mitigation_campaign(config);
  ASSERT_EQ(serial.pairs.size(), 4u);  // 2 matrix + 2 chaos pairs
  EXPECT_EQ(serial.delta_csv(), parallel.delta_csv());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

}  // namespace
}  // namespace stabl
