// End-to-end reproduction checks of the paper's headline results, at the
// paper's full geometry (n = 10, 200 TPS, fault at 133 s, recovery at
// 266 s, 400 s runs). Each test runs one baseline/altered pair; these are
// the slowest tests in the suite (several seconds each).
#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"

namespace stabl::core {
namespace {

ExperimentConfig paper_config(ChainKind chain, FaultType fault) {
  ExperimentConfig config;
  config.chain = chain;
  config.fault = fault;
  config.duration = sim::sec(400);
  config.inject_at = sim::sec(133);
  config.recover_at = sim::sec(266);
  config.seed = 42;
  if (fault == FaultType::kSecureClient) {
    config.client_fanout = 4;
    config.vcpus = 8.0;
  }
  return config;
}

const SensitivityRun& cached(ChainKind chain, FaultType fault) {
  static std::map<std::pair<ChainKind, FaultType>, SensitivityRun> cache;
  const auto key = std::make_pair(chain, fault);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, run_sensitivity(paper_config(chain, fault)))
             .first;
  }
  return it->second;
}

// ---------------------------------------------------------- §4 resilience

TEST(PaperResilience, RedbellyIsInsensitiveToCrashes) {
  const auto& run = cached(ChainKind::kRedbelly, FaultType::kCrash);
  EXPECT_TRUE(run.altered.live_at_end);
  EXPECT_LT(run.score.value, 1.0)
      << "leaderless DBFT: f = t crashes barely register";
}

TEST(PaperResilience, AllOtherChainsAreAffectedByCrashes) {
  for (const ChainKind chain :
       {ChainKind::kAlgorand, ChainKind::kAptos, ChainKind::kAvalanche,
        ChainKind::kSolana}) {
    const auto& run = cached(chain, FaultType::kCrash);
    EXPECT_TRUE(run.altered.live_at_end) << to_string(chain);
    EXPECT_GT(run.score.value,
              cached(ChainKind::kRedbelly, FaultType::kCrash).score.value *
                  4.0)
        << to_string(chain);
  }
}

TEST(PaperResilience, SolanaHasTheHighestCrashSensitivity) {
  const double solana =
      cached(ChainKind::kSolana, FaultType::kCrash).score.value;
  for (const ChainKind chain :
       {ChainKind::kAlgorand, ChainKind::kAptos, ChainKind::kAvalanche,
        ChainKind::kRedbelly}) {
    EXPECT_GT(solana, cached(chain, FaultType::kCrash).score.value)
        << to_string(chain);
  }
}

// ------------------------------------------------------ §5 recoverability

TEST(PaperRecoverability, AvalancheAndSolanaCannotRecover) {
  EXPECT_TRUE(cached(ChainKind::kAvalanche, FaultType::kTransient)
                  .score.infinite);
  EXPECT_TRUE(
      cached(ChainKind::kSolana, FaultType::kTransient).score.infinite);
}

TEST(PaperRecoverability, AlgorandAndRedbellyRecoverFast) {
  const auto& algorand = cached(ChainKind::kAlgorand, FaultType::kTransient);
  const auto& redbelly = cached(ChainKind::kRedbelly, FaultType::kTransient);
  EXPECT_TRUE(algorand.altered.live_at_end);
  EXPECT_TRUE(redbelly.altered.live_at_end);
  // Paper: ~9 s and ~7 s.
  EXPECT_GT(algorand.altered.recovery_seconds, 2.0);
  EXPECT_LT(algorand.altered.recovery_seconds, 20.0);
  EXPECT_GT(redbelly.altered.recovery_seconds, 2.0);
  EXPECT_LT(redbelly.altered.recovery_seconds, 15.0);
  // The backlog clears in a sharp peak: nearly everything commits.
  EXPECT_GT(algorand.altered.committed, 75000u);
  EXPECT_GT(redbelly.altered.committed, 75000u);
}

TEST(PaperRecoverability, AptosRecoversButCannotClearBacklog) {
  const auto& run = cached(ChainKind::kAptos, FaultType::kTransient);
  EXPECT_TRUE(run.altered.live_at_end) << "blocks are still being created";
  EXPECT_FALSE(run.score.infinite);
  // Degraded for the rest of the run: a large share never commits.
  EXPECT_LT(run.altered.committed, 70000u);
  // Worst finite recoverability of the three chains that do recover.
  EXPECT_GT(run.score.value,
            cached(ChainKind::kAlgorand, FaultType::kTransient).score.value);
  EXPECT_GT(run.score.value,
            cached(ChainKind::kRedbelly, FaultType::kTransient).score.value);
}

// --------------------------------------------------- §6 partition tolerance

TEST(PaperPartition, AvalancheAndSolanaCannotRecoverFromPartition) {
  EXPECT_TRUE(
      cached(ChainKind::kAvalanche, FaultType::kPartition).score.infinite);
  EXPECT_TRUE(
      cached(ChainKind::kSolana, FaultType::kPartition).score.infinite);
}

TEST(PaperPartition, TimeoutsSlowAlgorandAndRedbellyRecovery) {
  const auto& algorand = cached(ChainKind::kAlgorand, FaultType::kPartition);
  const auto& redbelly = cached(ChainKind::kRedbelly, FaultType::kPartition);
  // Paper: 9 s -> 99 s and 7 s -> 81 s.
  EXPECT_GT(algorand.altered.recovery_seconds, 80.0);
  EXPECT_LT(algorand.altered.recovery_seconds, 120.0);
  EXPECT_GT(redbelly.altered.recovery_seconds, 65.0);
  EXPECT_LT(redbelly.altered.recovery_seconds, 100.0);
  EXPECT_GT(
      algorand.altered.recovery_seconds,
      cached(ChainKind::kAlgorand, FaultType::kTransient)
              .altered.recovery_seconds +
          30.0);
  EXPECT_GT(
      redbelly.altered.recovery_seconds,
      cached(ChainKind::kRedbelly, FaultType::kTransient)
              .altered.recovery_seconds +
          30.0);
}

TEST(PaperPartition, AptosPartitionMatchesItsTransientSensitivity) {
  const double partition =
      cached(ChainKind::kAptos, FaultType::kPartition).score.value;
  const double transient =
      cached(ChainKind::kAptos, FaultType::kTransient).score.value;
  // 5 s connectivity probing: partition recovery is as quick as transient.
  EXPECT_NEAR(partition, transient, 0.35 * transient);
}

// ------------------------------------------- §7 Byzantine node tolerance

TEST(PaperByzantine, AlgorandAndSolanaRemainUnchanged) {
  const auto& algorand =
      cached(ChainKind::kAlgorand, FaultType::kSecureClient);
  const auto& solana = cached(ChainKind::kSolana, FaultType::kSecureClient);
  EXPECT_LT(algorand.score.value, 0.5);
  EXPECT_LT(solana.score.value, 0.5);
}

TEST(PaperByzantine, AptosDegradesFromSpeculativeExecution) {
  const auto& run = cached(ChainKind::kAptos, FaultType::kSecureClient);
  EXPECT_FALSE(run.score.infinite);
  EXPECT_FALSE(run.score.benefits);
  EXPECT_GT(run.altered.mean_latency_s, run.baseline.mean_latency_s * 1.5);
}

TEST(PaperByzantine, RedbellyAndAvalancheBenefit) {
  const auto& redbelly =
      cached(ChainKind::kRedbelly, FaultType::kSecureClient);
  const auto& avalanche =
      cached(ChainKind::kAvalanche, FaultType::kSecureClient);
  EXPECT_TRUE(redbelly.score.benefits) << "striped bar";
  EXPECT_TRUE(avalanche.score.benefits) << "striped bar";
  EXPECT_LT(redbelly.altered.mean_latency_s, redbelly.baseline.mean_latency_s);
  EXPECT_LT(avalanche.altered.mean_latency_s,
            avalanche.baseline.mean_latency_s);
  // Avalanche shows the largest improvement of the two.
  EXPECT_GT(avalanche.baseline.mean_latency_s -
                avalanche.altered.mean_latency_s,
            redbelly.baseline.mean_latency_s -
                redbelly.altered.mean_latency_s);
}

// -------------------------------------------------------- §8 discussion

TEST(PaperDiscussion, TransientSensitivityExceedsCrashSensitivity) {
  // "generally blockchains are more sensitive to transient failures than
  // permanent failures" — for every chain whose transient score is finite,
  // and trivially for the infinite ones.
  for (const ChainKind chain : kAllChains) {
    const auto& transient = cached(chain, FaultType::kTransient);
    if (transient.score.infinite) continue;
    EXPECT_GT(transient.score.value,
              cached(chain, FaultType::kCrash).score.value)
        << to_string(chain);
  }
}

TEST(PaperDiscussion, BaselineLatencyRanking) {
  // Solana fastest, then Aptos; Algorand slowest of the five baselines —
  // the context for "Solana experiencing higher sensitivity due to better
  // performance in the baseline condition".
  const double solana =
      cached(ChainKind::kSolana, FaultType::kCrash).baseline.mean_latency_s;
  const double aptos =
      cached(ChainKind::kAptos, FaultType::kCrash).baseline.mean_latency_s;
  const double redbelly =
      cached(ChainKind::kRedbelly, FaultType::kCrash).baseline.mean_latency_s;
  const double algorand =
      cached(ChainKind::kAlgorand, FaultType::kCrash).baseline.mean_latency_s;
  EXPECT_LT(solana, aptos);
  EXPECT_LT(aptos, redbelly);
  EXPECT_LT(redbelly, algorand);
}

}  // namespace
}  // namespace stabl::core
