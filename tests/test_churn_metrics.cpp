// Tests for the crash-recovery churn fault and the per-chain diagnostic
// metrics surfaced through ExperimentResult.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace stabl::core {
namespace {

TEST(ChurnFault, NamesAndDefaults) {
  EXPECT_EQ(to_string(FaultType::kChurn), "churn");
  FaultPlan plan;
  EXPECT_GT(plan.churn_down.count(), 0);
  EXPECT_GT(plan.churn_up.count(), 0);
}

TEST(ChurnFault, RedbellySurvivesQuorumPreservingChurn) {
  // f = t nodes bounce every (10 s down, 15 s up); leaderless DBFT keeps a
  // quorum throughout and commits the whole workload.
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(150);
  config.inject_at = sim::sec(30);
  config.recover_at = sim::sec(120);
  config.fault = FaultType::kChurn;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, result.submitted - 1500);
}

TEST(ChurnFault, AptosToleratesChurnWithDegradation) {
  ExperimentConfig config;
  config.chain = ChainKind::kAptos;
  config.duration = sim::sec(150);
  config.inject_at = sim::sec(30);
  config.recover_at = sim::sec(120);
  config.fault = FaultType::kChurn;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, 20000u);
}

TEST(ChurnFault, ChurnBeyondThresholdHaltsPeriodically) {
  // f = t+1 churn: the chain halts while the targets are down and resumes
  // while they are up — committed lands between "always up" and "down for
  // the whole window".
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(150);
  config.inject_at = sim::sec(30);
  config.recover_at = sim::sec(120);
  config.fault = FaultType::kChurn;
  config.fault_count = 4;  // t + 1
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  // 150 s * 200 TPS ~ 29.9k submitted; halting ~4 windows of 10+ s costs
  // throughput during the window but the backlog clears after each.
  EXPECT_GT(result.committed, 25000u);
}

TEST(ChainMetrics, AptosExposesSpeculativeAborts) {
  ExperimentConfig config;
  config.chain = ChainKind::kAptos;
  config.duration = sim::sec(30);
  config.fault = FaultType::kSecureClient;
  config.client_fanout = 4;
  config.vcpus = 8.0;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.chain_metrics.contains("speculative_aborts"));
  EXPECT_GT(result.chain_metrics.at("speculative_aborts"), 10000.0);
}

TEST(ChainMetrics, SolanaExposesPanicCount) {
  ExperimentConfig config;
  config.chain = ChainKind::kSolana;
  config.duration = sim::sec(200);
  config.inject_at = sim::sec(133);
  config.fault = FaultType::kCrash;
  config.fault_count = 4;  // > t: EAH panic
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.chain_metrics.contains("panicked"));
  // The six surviving nodes all panic (the four killed ones never check).
  EXPECT_DOUBLE_EQ(result.chain_metrics.at("panicked"), 6.0);
}

TEST(ChainMetrics, AvalancheExposesThrottling) {
  ExperimentConfig config;
  config.chain = ChainKind::kAvalanche;
  config.duration = sim::sec(30);
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.chain_metrics.contains("messages_processed"));
  EXPECT_GT(result.chain_metrics.at("messages_processed"), 1000.0);
  ASSERT_TRUE(result.chain_metrics.contains("throttled_dropped"));
  EXPECT_DOUBLE_EQ(result.chain_metrics.at("throttled_dropped"), 0.0)
      << "baseline must not drop messages";
}

TEST(ChainMetrics, AlgorandAndRedbellyExposeRounds) {
  for (const ChainKind chain :
       {ChainKind::kAlgorand, ChainKind::kRedbelly}) {
    ExperimentConfig config;
    config.chain = chain;
    config.duration = sim::sec(30);
    const ExperimentResult result = run_experiment(config);
    ASSERT_TRUE(result.chain_metrics.contains("round")) << to_string(chain);
    EXPECT_GT(result.chain_metrics.at("round"), 10.0) << to_string(chain);
  }
}

}  // namespace
}  // namespace stabl::core
