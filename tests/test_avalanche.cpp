// Avalanche model tests: Snowball progress, throttler behaviour, the
// metastable collapse under quorum-exceeding transient failures, and the
// throttling ablation that restores recovery.
#include "chains/avalanche/avalanche.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace stabl::avalanche {
namespace {

using testing::Harness;

void build(Harness& harness, std::size_t n = 10,
           AvalancheConfig config = {}) {
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 53;
  harness.nodes =
      make_cluster(harness.simulation, harness.network, node_config, config);
}

const AvalancheNode& node_at(const Harness& harness, std::size_t index) {
  return static_cast<const AvalancheNode&>(*harness.nodes[index]);
}

TEST(Avalanche, BaselineCommitsWorkload) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(50));
  EXPECT_GT(harness.total_client_committed(), 6800u);
  testing::expect_prefix_consistent(harness);
  testing::expect_no_double_execution(harness);
}

TEST(Avalanche, BlockCadenceNearInterval) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(40));
  harness.start_all();
  harness.simulation.run_until(sim::sec(40));
  const auto blocks = harness.nodes[0]->ledger().height();
  // ~2s block interval plus consensus: between 10 and 20 blocks in 40s.
  EXPECT_GE(blocks, 10u);
  EXPECT_LE(blocks, 22u);
}

TEST(Avalanche, BaselineThrottlerStaysQuiet) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(30));
  harness.start_all();
  harness.simulation.run_until(sim::sec(30));
  for (std::size_t i = 0; i < harness.nodes.size(); ++i) {
    EXPECT_EQ(node_at(harness, i).throttler().dropped(), 0u)
        << "node " << i << " dropped messages in a healthy baseline";
    EXPECT_LT(node_at(harness, i).throttler().queued(), 64u);
  }
}

TEST(Avalanche, SurvivesSingleCrash) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  harness.nodes[9]->kill();  // f = t = 1
  harness.simulation.run_until(sim::sec(70));
  // Slower and less stable, but alive.
  EXPECT_GT(harness.total_client_committed(), 9000u);
}

TEST(Avalanche, TransientBeyondThresholdNeverRecovers) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(180));
  harness.start_all();
  harness.simulation.run_until(sim::sec(30));
  harness.nodes[8]->kill();
  harness.nodes[9]->kill();  // f = t+1 = 2
  harness.simulation.run_until(sim::sec(90));
  harness.nodes[8]->start();
  harness.nodes[9]->start();
  harness.simulation.run_until(sim::sec(180));
  // The throttling-induced overload is self-sustaining: essentially no
  // progress even 90s after both nodes returned.
  const auto height_mid = harness.nodes[0]->ledger().tx_count();
  EXPECT_LT(height_mid, 9000u) << "collapse should persist after restart";
  bool throttled = false;
  for (std::size_t i = 0; i < harness.nodes.size(); ++i) {
    if (node_at(harness, i).throttler().dropped() > 0 ||
        node_at(harness, i).throttler().queued() > 256) {
      throttled = true;
    }
  }
  EXPECT_TRUE(throttled) << "the collapse is throttling-induced";
}

TEST(Avalanche, AblationDisablingThrottlerRestoresRecovery) {
  AvalancheConfig config;
  config.throttler.enabled = false;
  Harness harness;
  build(harness, 10, config);
  harness.add_clients(5, 40.0, sim::sec(180));
  harness.start_all();
  harness.simulation.run_until(sim::sec(30));
  harness.nodes[8]->kill();
  harness.nodes[9]->kill();
  harness.simulation.run_until(sim::sec(90));
  harness.nodes[8]->start();
  harness.nodes[9]->start();
  harness.simulation.run_until(sim::sec(180));
  // Without the InboundMsgThrottler consensus resumes after restart and
  // the backlog drains (the paper's diagnosis, inverted). The drain is
  // bounded by gossip's unordered nonce delivery, so it is slower than the
  // nominal capacity but must clearly exceed the collapsed case (<9000).
  EXPECT_GT(harness.nodes[0]->ledger().tx_count(), 14000u);
}

TEST(Avalanche, SecureClientImprovesLatency) {
  auto mean_latency = [](int fanout) {
    Harness harness;
    build(harness);
    harness.add_clients(5, 40.0, sim::sec(60), fanout);
    harness.start_all();
    harness.simulation.run_until(sim::sec(60));
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& client : harness.clients) {
      for (const double latency : client->latencies()) {
        sum += latency;
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  // Redundant submission seeds four pools at once, compensating the
  // unordered gossip (paper §7: Avalanche benefits — the striped bar).
  EXPECT_LT(mean_latency(4), mean_latency(1));
}

TEST(AnchorLogTest, FirstDecisionWins) {
  AnchorLog log;
  EXPECT_EQ(log.decide(3, 111u), 111u);
  EXPECT_EQ(log.decide(3, 222u), 111u);
  ASSERT_NE(log.get(3), nullptr);
  EXPECT_EQ(*log.get(3), 111u);
  EXPECT_EQ(log.get(4), nullptr);
}

TEST(ThrottlerUnit, PassesThroughUnderQuota) {
  sim::Simulation simulation(1);
  class Host final : public sim::Process {
   public:
    using Process::Process;
  } host(simulation, 0);
  host.start();
  int handled = 0;
  ThrottlerConfig config;
  config.cpu_target = 0.5;
  InboundThrottler throttler(
      host, config, [](const net::Envelope&) { return sim::ms(1); },
      [&](const net::Envelope&) { ++handled; });
  throttler.start();
  net::Envelope envelope;
  for (int i = 0; i < 10; ++i) throttler.enqueue(envelope);
  EXPECT_EQ(handled, 10);
  EXPECT_EQ(throttler.queued(), 0u);
}

TEST(ThrottlerUnit, DefersAboveQuotaAndDrainsLater) {
  sim::Simulation simulation(1);
  class Host final : public sim::Process {
   public:
    using Process::Process;
  } host(simulation, 0);
  host.start();
  int handled = 0;
  ThrottlerConfig config;
  config.cpu_target = 0.5;
  InboundThrottler throttler(
      host, config, [](const net::Envelope&) { return sim::ms(200); },
      [&](const net::Envelope&) { ++handled; });
  throttler.start();
  net::Envelope envelope;
  for (int i = 0; i < 20; ++i) throttler.enqueue(envelope);
  EXPECT_LT(handled, 20) << "quota exceeded: messages must queue";
  EXPECT_GT(throttler.queued(), 0u);
  simulation.run_until(sim::sec(30));
  EXPECT_EQ(handled, 20) << "decay eventually drains the queue";
}

TEST(ThrottlerUnit, BufferThrottlerDropsBeyondCapacity) {
  sim::Simulation simulation(1);
  class Host final : public sim::Process {
   public:
    using Process::Process;
  } host(simulation, 0);
  host.start();
  ThrottlerConfig config;
  config.cpu_target = 0.01;
  config.max_unprocessed = 8;
  int handled = 0;
  InboundThrottler throttler(
      host, config, [](const net::Envelope&) { return sim::sec(1); },
      [&](const net::Envelope&) { ++handled; });
  throttler.start();
  net::Envelope envelope;
  for (int i = 0; i < 100; ++i) throttler.enqueue(envelope);
  EXPECT_GT(throttler.dropped(), 80u);
  EXPECT_LE(throttler.queued(), 8u);
}

TEST(ThrottlerUnit, BandwidthQuotaDefersLargeMessages) {
  sim::Simulation simulation(1);
  class Host final : public sim::Process {
   public:
    using Process::Process;
  } host(simulation, 0);
  host.start();
  ThrottlerConfig config;
  config.cpu_target = 100.0;           // CPU never binds here
  config.bandwidth_target_bps = 1e6;   // 1 MB/s
  int handled = 0;
  InboundThrottler throttler(
      host, config, [](const net::Envelope&) { return sim::us(1); },
      [&](const net::Envelope&) { ++handled; });
  throttler.start();
  net::Envelope big;
  big.bytes = 1'000'000;  // 1 MB frames
  for (int i = 0; i < 10; ++i) throttler.enqueue(big);
  EXPECT_LT(handled, 10) << "sustained multi-MB/s inflow must defer";
  EXPECT_GT(throttler.bandwidth_bps(), 0.0);
  simulation.run_until(sim::sec(60));
  EXPECT_EQ(handled, 10) << "the meter decays and the queue drains";
}

TEST(ThrottlerUnit, SmallMessagesIgnoreBandwidthQuota) {
  sim::Simulation simulation(1);
  class Host final : public sim::Process {
   public:
    using Process::Process;
  } host(simulation, 0);
  host.start();
  ThrottlerConfig config;
  config.cpu_target = 100.0;
  config.bandwidth_target_bps = 1e6;
  int handled = 0;
  InboundThrottler throttler(
      host, config, [](const net::Envelope&) { return sim::us(1); },
      [&](const net::Envelope&) { ++handled; });
  throttler.start();
  net::Envelope small;
  small.bytes = 128;
  for (int i = 0; i < 200; ++i) throttler.enqueue(small);
  EXPECT_EQ(handled, 200);
}

TEST(ThrottlerUnit, DisabledProcessesEverythingInline) {
  sim::Simulation simulation(1);
  class Host final : public sim::Process {
   public:
    using Process::Process;
  } host(simulation, 0);
  host.start();
  ThrottlerConfig config;
  config.enabled = false;
  int handled = 0;
  InboundThrottler throttler(
      host, config, [](const net::Envelope&) { return sim::sec(1); },
      [&](const net::Envelope&) { ++handled; });
  net::Envelope envelope;
  for (int i = 0; i < 50; ++i) throttler.enqueue(envelope);
  EXPECT_EQ(handled, 50);
  EXPECT_EQ(throttler.dropped(), 0u);
}

}  // namespace
}  // namespace stabl::avalanche
