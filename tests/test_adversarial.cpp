// The adversarial fault family (DESIGN.md §13): equivocation, withholding
// and eclipse plans; the peer-misbehavior scorer; safety-aware oracle
// verdicts; and the ISSUE acceptance property — an equivocation schedule
// with defenses off forks a content-blind chain (deterministic, shrinkable,
// byte-stable repro), and the same schedule with the scorer enabled is
// contained to at-worst a liveness loss.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chain/node.hpp"
#include "core/chaos.hpp"
#include "core/experiment.hpp"
#include "core/fault.hpp"
#include "core/misbehavior.hpp"
#include "core/observer.hpp"
#include "core/oracle.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------ plan canonical/JSON

/// A plan of the given type with EVERY knob moved off its default, so
/// canonical() has dead fields to reset on each type.
FaultPlan noisy_plan(FaultType type) {
  FaultPlan plan;
  plan.type = type;
  plan.targets = {3, 1};  // unsorted on purpose
  plan.inject_at = sim::sec(41);
  plan.recover_at = sim::sec(97);
  plan.delay_amount = sim::sec(7);
  plan.churn_down = sim::sec(4);
  plan.churn_up = sim::sec(6);
  plan.loss_probability = 0.37;
  plan.throttle_bytes_per_s = 12345.0;
  plan.gray_latency = sim::sec(3);
  plan.eclipse_victim = 0;
  plan.eclipse_delay = sim::ms(250);
  plan.eclipse_filter = 0.33;
  return plan;
}

std::string plan_json(const FaultPlan& plan) {
  FaultSchedule schedule;
  schedule.add(plan);
  return schedule_to_json(schedule);
}

TEST(AdversarialFaultPlans, CanonicalIsIdempotentForEveryType) {
  for (const FaultType type : kAllFaultTypes) {
    const FaultPlan once = canonical(noisy_plan(type));
    const FaultPlan twice = canonical(once);
    EXPECT_EQ(plan_json(twice), plan_json(once))
        << "canonical not idempotent for " << to_string(type);
  }
}

TEST(AdversarialFaultPlans, ScheduleJsonRoundTripsByteStablyForEveryType) {
  for (const FaultType type : kAllFaultTypes) {
    const std::string json = plan_json(noisy_plan(type));
    FaultSchedule parsed;
    ASSERT_NO_THROW(parsed = schedule_from_json(json))
        << to_string(type) << ": " << json;
    EXPECT_EQ(schedule_to_json(parsed), json)
        << "round trip not byte-stable for " << to_string(type);
  }
}

TEST(AdversarialFaultPlans, CanonicalResetsDeadEclipseKnobsOffEclipse) {
  // The eclipse knobs are dead fields on every other type: two loss plans
  // differing only in eclipse knobs must serialize identically.
  FaultPlan a = noisy_plan(FaultType::kLoss);
  FaultPlan b = a;
  b.eclipse_victim = 7;
  b.eclipse_delay = sim::sec(9);
  b.eclipse_filter = 0.77;
  EXPECT_EQ(plan_json(canonical(a)), plan_json(canonical(b)));
}

// ----------------------------------------- schedule arming (satellite 1)

class NullNode final : public chain::BlockchainNode {
 public:
  using BlockchainNode::BlockchainNode;

 protected:
  void start_protocol() override {}
  void on_app_message(const net::Envelope&) override {}
  void accept_transaction(const chain::Transaction&) override {}
};

TEST(AdversarialFaultPlans, ArmingSchedulesNamesTheOffendingPlan) {
  sim::Simulation simulation(3);
  net::Network network(simulation, net::LatencyConfig{});
  std::vector<std::unique_ptr<NullNode>> nodes;
  std::vector<chain::BlockchainNode*> pointers;
  for (net::NodeId id = 0; id < 4; ++id) {
    chain::NodeConfig config;
    config.id = id;
    config.n = 4;
    config.network_seed = 1;
    nodes.push_back(std::make_unique<NullNode>(simulation, network, config));
    pointers.push_back(nodes.back().get());
  }
  Observers observers(simulation, network, pointers);

  FaultPlan good;
  good.type = FaultType::kCrash;
  good.targets = {1};
  FaultPlan bad;  // eclipse victim must not itself be an attacker target
  bad.type = FaultType::kEclipse;
  bad.targets = {2};
  bad.eclipse_victim = 2;

  FaultSchedule schedule;
  schedule.add(good).add(bad);
  std::string error;
  try {
    observers.arm(schedule);
  } catch (const std::invalid_argument& exception) {
    error = exception.what();
  }
  EXPECT_NE(error.find("plan 1 of 2"), std::string::npos) << error;
  EXPECT_NE(error.find("victim"), std::string::npos) << error;
}

// --------------------------------------------------- misbehavior scorer

TEST(MisbehaviorScorer, DisabledScorerNeverRecordsOrDrops) {
  MisbehaviorScorer scorer;  // default config: disabled
  scorer.report(3, Offense::kEquivocation, sim::sec(1));
  EXPECT_EQ(scorer.reports(), 0u);
  EXPECT_EQ(scorer.score(3, sim::sec(2)), 0.0);
  EXPECT_FALSE(scorer.should_drop(3, sim::sec(2)));
}

TEST(MisbehaviorScorer, ThrottleDropsEveryOtherMessage) {
  MisbehaviorConfig config;
  config.enabled = true;
  MisbehaviorScorer scorer(config);
  // Two equivocations = score 20, above throttle (15), below ban (30).
  scorer.report(5, Offense::kEquivocation, sim::sec(1));
  scorer.report(5, Offense::kEquivocation, sim::sec(1));
  EXPECT_FALSE(scorer.banned(5));
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    if (scorer.should_drop(5, sim::sec(2))) ++dropped;
  }
  EXPECT_EQ(dropped, 5);
  // An unoffending peer is untouched.
  EXPECT_FALSE(scorer.should_drop(6, sim::sec(2)));
}

TEST(MisbehaviorScorer, BanIsStickyAcrossDecay) {
  MisbehaviorConfig config;
  config.enabled = true;
  MisbehaviorScorer scorer(config);
  for (int i = 0; i < 3; ++i) {
    scorer.report(7, Offense::kEquivocation, sim::sec(1));
  }
  EXPECT_TRUE(scorer.banned(7));
  // Long after the score would have decayed to zero, the ban holds.
  EXPECT_TRUE(scorer.should_drop(7, sim::sec(100000)));
  EXPECT_TRUE(scorer.should_drop(7, sim::sec(100001)));
}

TEST(MisbehaviorScorer, ScoresDecayLinearly) {
  MisbehaviorConfig config;
  config.enabled = true;
  MisbehaviorScorer scorer(config);
  scorer.report(2, Offense::kEquivocation, sim::sec(0));  // score 10
  EXPECT_DOUBLE_EQ(scorer.score(2, sim::sec(0)), 10.0);
  // decay_per_s = 0.1: 50 s later the score has shed 5 points.
  EXPECT_DOUBLE_EQ(scorer.score(2, sim::sec(50)), 5.0);
  EXPECT_DOUBLE_EQ(scorer.score(2, sim::sec(1000)), 0.0);
}

// -------------------------------------------- adversarial chaos sampling

TEST(AdversarialChaos, AdversarialGenSamplesTheByzantineFamily) {
  const ChaosGenConfig gen = adversarial_gen_for(sim::sec(120));
  bool adversarial_seen = false;
  sim::Rng rng(2024);
  for (int trial = 0; trial < 40 && !adversarial_seen; ++trial) {
    const FaultSchedule schedule = generate_schedule(rng, gen);
    for (const FaultPlan& plan : schedule.plans) {
      EXPECT_EQ(validate(plan, gen.n), "");
      if (is_adversarial(plan.type)) adversarial_seen = true;
    }
  }
  EXPECT_TRUE(adversarial_seen)
      << "40 adversarial-gen schedules produced no adversarial plan";
}

TEST(AdversarialChaos, DefaultGenStaysByteIdenticalWithoutOptIn) {
  // Opt-in discipline: the default generator must not sample the new
  // types, so pre-existing campaign outputs are unchanged.
  const ChaosGenConfig gen = default_gen_for(sim::sec(120));
  for (const FaultType type : gen.types) {
    EXPECT_FALSE(is_adversarial(type)) << to_string(type);
  }
  sim::Rng a(7);
  sim::Rng b(7);
  EXPECT_EQ(schedule_to_json(generate_schedule(a, gen)),
            schedule_to_json(generate_schedule(b, default_gen_for(sim::sec(120)))));
}

TEST(AdversarialChaos, EclipsePlansRoundTripThroughRepros) {
  const ChaosGenConfig gen = adversarial_gen_for(sim::sec(120));
  sim::Rng rng(99);
  bool eclipse_seen = false;
  for (int trial = 0; trial < 200 && !eclipse_seen; ++trial) {
    const FaultSchedule schedule = generate_schedule(rng, gen);
    for (const FaultPlan& plan : schedule.plans) {
      if (plan.type == FaultType::kEclipse) eclipse_seen = true;
    }
    const std::string json = schedule_to_json(schedule);
    EXPECT_EQ(schedule_to_json(schedule_from_json(json)), json);
  }
  EXPECT_TRUE(eclipse_seen);
}

// ------------------------------------------------------ acceptance runs

ExperimentConfig adversarial_config(ChainKind chain, FaultType fault) {
  ExperimentConfig config;
  config.chain = chain;
  config.fault = fault;
  config.duration = sim::sec(120);
  config.inject_at = sim::sec(40);
  config.recover_at = sim::sec(80);
  config.capture_replicas = true;
  return config;
}

OracleReport audit(const ExperimentConfig& config) {
  return check_invariants(make_oracle_context(config),
                          run_experiment(config));
}

// The tentpole acceptance property, first half: a coalition of t
// equivocating replicas forks Solana's content-blind per-slot voting when
// no defense is armed — a deterministic *safety* violation between honest
// replicas, not merely a liveness dip.
TEST(AdversarialAcceptance, EquivocationForksSolanaWithoutDefenses) {
  const ExperimentConfig config =
      adversarial_config(ChainKind::kSolana, FaultType::kEquivocate);
  const OracleReport report = audit(config);
  const OracleFinding* fork = report.safety_violation();
  ASSERT_NE(fork, nullptr) << report.summary();
  EXPECT_EQ(fork->cls, OracleClass::kSafety);

  // Deterministic: the same config audits to the identical summary, and
  // the armed schedule serializes to the identical repro bytes.
  EXPECT_EQ(audit(config).summary(), report.summary());
  const std::string repro = schedule_to_json(resolved_schedule(config));
  EXPECT_EQ(schedule_to_json(resolved_schedule(config)), repro);
  EXPECT_EQ(schedule_to_json(schedule_from_json(repro)), repro);
}

// Second half: the same schedule with the misbehavior scorer enabled is
// contained — honest replicas detect the conflicting payloads, ban the
// equivocators, and keep their ledgers consistent. At worst the attack
// costs liveness; it can no longer cost safety.
TEST(AdversarialAcceptance, DefensesContainEquivocationToLivenessAtWorst) {
  ExperimentConfig config =
      adversarial_config(ChainKind::kSolana, FaultType::kEquivocate);
  config.chain_params["misbehavior_defense"] = 1.0;
  const OracleReport report = audit(config);
  EXPECT_EQ(report.safety_violation(), nullptr) << report.summary();
}

// The adversarial diagnostics reach the harvested chain metrics, and the
// oracle context knows which replicas were compromised.
TEST(AdversarialAcceptance, AdversarialMetricsAndContextAreWired) {
  const ExperimentConfig config =
      adversarial_config(ChainKind::kSolana, FaultType::kEquivocate);
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.chain_metrics.count("equivocations_sent"), 0u);
  EXPECT_GT(result.chain_metrics.at("equivocations_sent"), 0.0);

  const OracleContext context = make_oracle_context(config);
  EXPECT_FALSE(context.adversarial.empty());
  for (const net::NodeId id : context.adversarial) {
    EXPECT_GE(id, net::NodeId{5});  // paper defaults: entry nodes spared
  }
}

// Withholding and eclipse are liveness-family attacks: they may slow or
// stall the chain but must never fork honest ledgers.
TEST(AdversarialAcceptance, WithholdNeverBreaksSafety) {
  const OracleReport report = audit(
      adversarial_config(ChainKind::kSolana, FaultType::kWithhold));
  EXPECT_EQ(report.safety_violation(), nullptr) << report.summary();
}

TEST(AdversarialAcceptance, EclipseNeverBreaksSafety) {
  const OracleReport report = audit(
      adversarial_config(ChainKind::kRedbelly, FaultType::kEclipse));
  EXPECT_EQ(report.safety_violation(), nullptr) << report.summary();
}

// Anchored chains resist the same coalition: Redbelly's decision log pins
// one canonical superblock per consensus instance, so equivocation there
// is at worst a liveness problem even with defenses off. This asymmetry
// is the sensitivity-to-attack radar's cross-chain story.
TEST(AdversarialAcceptance, AnchoredRedbellyResistsEquivocation) {
  const OracleReport report = audit(
      adversarial_config(ChainKind::kRedbelly, FaultType::kEquivocate));
  EXPECT_EQ(report.safety_violation(), nullptr) << report.summary();
}

// The fork repro shrinks: ddmin against the same-oracle-match rule finds a
// minimal schedule still violating the same safety oracle, and the
// minimized schedule's JSON is byte-stable through parse/serialize.
TEST(AdversarialAcceptance, EquivocationScheduleShrinksToMinimalRepro) {
  ExperimentConfig base =
      adversarial_config(ChainKind::kSolana, FaultType::kEquivocate);
  const FaultSchedule schedule = resolved_schedule(base);
  ASSERT_EQ(schedule.plans.size(), 1u);

  const ScheduleEvaluator evaluate =
      [&base](const FaultSchedule& candidate) {
        ExperimentConfig config = base;
        config.fault = FaultType::kNone;
        config.extra_faults = candidate;
        return audit(config);
      };
  ShrinkOptions options;
  options.max_runs = 30;
  const auto shrunk = shrink_schedule(schedule, evaluate, options);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_LE(shrunk->schedule.plans.size(), schedule.plans.size());
  ASSERT_FALSE(shrunk->schedule.plans.empty());
  EXPECT_EQ(shrunk->schedule.plans[0].type, FaultType::kEquivocate);

  const std::string repro = schedule_to_json(shrunk->schedule);
  EXPECT_EQ(schedule_to_json(schedule_from_json(repro)), repro);
}

}  // namespace
}  // namespace stabl::core
