// Workload shape tests: average preservation, phase behaviour, and the
// client actually producing the requested processes.
#include "core/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "chain_test_util.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "core/experiment.hpp"

namespace stabl::core {
namespace {

double average_rate(const WorkloadConfig& config, sim::Duration duration,
                    int samples = 4000) {
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const auto at = sim::Duration{duration.count() * i / samples};
    sum += workload_rate(config, at, duration);
  }
  return sum / samples;
}

TEST(Workload, ConstantIsConstant) {
  WorkloadConfig config;
  config.tps = 40.0;
  for (int s = 0; s < 400; s += 13) {
    EXPECT_DOUBLE_EQ(workload_rate(config, sim::sec(s), sim::sec(400)),
                     40.0);
  }
}

TEST(Workload, BurstyAlternatesPhases) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kBursty;
  config.tps = 40.0;
  config.burst_period = sim::sec(20);
  config.burst_factor = 3.0;
  const double high = workload_rate(config, sim::sec(5), sim::sec(400));
  const double low = workload_rate(config, sim::sec(25), sim::sec(400));
  EXPECT_NEAR(high, 60.0, 1e-9);
  EXPECT_NEAR(low, 20.0, 1e-9);
  EXPECT_NEAR(high / low, 3.0, 1e-9);
}

TEST(Workload, BurstyPreservesAverage) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kBursty;
  config.tps = 40.0;
  EXPECT_NEAR(average_rate(config, sim::sec(400)), 40.0, 0.5);
}

TEST(Workload, RampGrowsAndPreservesAverage) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kRamp;
  config.tps = 40.0;
  config.ramp_start_fraction = 0.2;
  const double early = workload_rate(config, sim::sec(0), sim::sec(400));
  const double late = workload_rate(config, sim::sec(399), sim::sec(400));
  EXPECT_NEAR(early, 8.0, 0.5);
  EXPECT_NEAR(late, 72.0, 0.5);
  EXPECT_NEAR(average_rate(config, sim::sec(400)), 40.0, 0.5);
}

TEST(Workload, DiurnalCyclesAroundAndPreservesAverage) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kDiurnal;
  config.tps = 40.0;
  config.diurnal_amplitude = 0.6;
  // Default period: one full cycle over the run. Trough at t=0, peak at
  // half a period.
  const double trough = workload_rate(config, sim::sec(0), sim::sec(400));
  const double peak = workload_rate(config, sim::sec(200), sim::sec(400));
  EXPECT_NEAR(trough, 16.0, 1e-9);
  EXPECT_NEAR(peak, 64.0, 1e-9);
  EXPECT_NEAR(average_rate(config, sim::sec(400)), 40.0, 0.5);
}

TEST(Workload, FlashCrowdMultipliesTheWindowAndPreservesAverage) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kFlash;
  config.tps = 40.0;
  config.flash_at = sim::sec(150);
  config.flash_duration = sim::sec(50);
  config.flash_factor = 6.0;
  const double before = workload_rate(config, sim::sec(100), sim::sec(400));
  const double inside = workload_rate(config, sim::sec(170), sim::sec(400));
  const double after = workload_rate(config, sim::sec(300), sim::sec(400));
  EXPECT_NEAR(inside / before, 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(before, after);
  EXPECT_LT(before, 40.0);  // the crowd borrows rate from the rest
  EXPECT_NEAR(average_rate(config, sim::sec(400)), 40.0, 0.5);
}

TEST(Workload, StepInvertsRateBelowTheFloor) {
  WorkloadConfig config;
  config.tps = 50.0;
  const ArrivalStep step = workload_step(config, sim::sec(1), sim::sec(100));
  EXPECT_EQ(step.interval, sim::us(20000));
  EXPECT_EQ(step.count, 1);
}

TEST(Workload, StepMatchesIntervalBelowTheFloor) {
  WorkloadConfig config;
  config.tps = 50.0;
  const ArrivalStep step = workload_step(config, sim::sec(1), sim::sec(100));
  EXPECT_EQ(step.interval, sim::us(20000));
  EXPECT_EQ(step.count, 1);
  EXPECT_FALSE(step.clamped);
}

// The legacy clamp silently broke the "averages to config.tps" contract
// above 10k TPS; the aggregate step must instead batch arrivals per tick
// and keep count/interval == rate exactly.
TEST(Workload, StepBatchesInsteadOfClampingAboveTenKTps) {
  WorkloadConfig config;
  config.tps = 25000.0;  // raw gap 40 us, below the 100 us floor
  const ArrivalStep step = workload_step(config, sim::sec(1), sim::sec(100));
  EXPECT_TRUE(step.clamped);
  EXPECT_GE(step.interval, kMinArrivalGap);
  const double achieved =
      static_cast<double>(step.count) /
      sim::to_seconds(step.interval);
  EXPECT_NEAR(achieved, 25000.0, 1.0);
  // The retired workload_interval() clamped to the floor here — i.e.
  // 10k TPS, not 25k. Every pacing path now routes through this step.
}

// Satellite regression for retiring the single-timer pacing: a client
// driven through workload_step holds the configured average at 50k TPS,
// a rate the deleted workload_interval() silently capped at 10k.
TEST(Workload, FiftyKTpsAverageHoldsThroughTheSteppedPath) {
  WorkloadConfig config;
  config.tps = 50000.0;
  sim::Time at{0};
  const sim::Time horizon = sim::sec(2);
  std::uint64_t emitted = 0;
  while (at < horizon) {
    const ArrivalStep step = workload_step(config, at, horizon);
    EXPECT_TRUE(step.clamped);
    emitted += static_cast<std::uint64_t>(step.count);
    at += step.interval;
  }
  const double achieved =
      static_cast<double>(emitted) / sim::to_seconds(horizon);
  EXPECT_NEAR(achieved, 50000.0, 500.0);  // within 1%
}

TEST(Workload, StepSurvivesRatesAboveTheClockResolution) {
  WorkloadConfig config;
  config.tps = 3e6;  // raw gap truncates to 0 us
  const ArrivalStep step = workload_step(config, sim::sec(1), sim::sec(100));
  EXPECT_TRUE(step.clamped);
  EXPECT_EQ(step.interval, kMinArrivalGap);  // never a zero-length tick
  EXPECT_EQ(step.count, 300);                // 3M TPS * 100 us
}

TEST(Workload, StepAveragePreservedAcrossBurstyPhases) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kBursty;
  config.tps = 40000.0;
  config.burst_period = sim::sec(20);
  config.burst_factor = 3.0;
  // High phase 60k TPS, low phase 20k TPS: both above the floor's 10k.
  // The batched step preserves the microsecond-truncated rate exactly
  // (the same quantisation a per-arrival timer has below the floor): the
  // raw gap truncates to whole microseconds, so 60k TPS -> 16 us -> 62.5k.
  for (const long at_s : {5L, 25L}) {
    const ArrivalStep step =
        workload_step(config, sim::sec(at_s), sim::sec(400));
    const double rate = workload_rate(config, sim::sec(at_s), sim::sec(400));
    const double truncated_rate =
        1e6 / std::floor(1e6 / rate);  // whole-us gap, as a rate
    const double achieved =
        static_cast<double>(step.count) /
        sim::to_seconds(step.interval);
    EXPECT_TRUE(step.clamped);
    EXPECT_NEAR(achieved, truncated_rate, 1e-6 * truncated_rate);
    EXPECT_NEAR(achieved, rate, rate * 0.05);  // quantisation stays small
  }
}

TEST(Workload, ClientFollowsBurstyShape) {
  testing::Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 77;
  harness.nodes = redbelly::make_cluster(harness.simulation,
                                         harness.network, node_config);
  ClientConfig config;
  config.id = 10;
  config.account = 0;
  config.recipient = 999;
  config.endpoints = {0};
  config.tps = 40.0;
  config.stop_at = sim::sec(40);
  config.workload.shape = WorkloadShape::kBursty;
  config.workload.burst_period = sim::sec(10);
  config.workload.burst_factor = 3.0;
  harness.clients.push_back(std::make_unique<ClientMachine>(
      harness.simulation, harness.network, config));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  const auto high_phase = harness.clients[0]->submitted();
  harness.simulation.run_until(sim::sec(20));
  const auto low_phase = harness.clients[0]->submitted() - high_phase;
  EXPECT_NEAR(static_cast<double>(high_phase), 570.0, 60.0);  // ~60 tps
  EXPECT_NEAR(static_cast<double>(low_phase), 200.0, 40.0);   // ~20 tps
}

TEST(Workload, ExperimentRunsBurstyAlteredAgainstConstantBaseline) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(40);
  config.workload.shape = WorkloadShape::kBursty;
  config.workload.burst_period = sim::sec(10);
  const SensitivityRun run = run_sensitivity(config);
  // Same average load: both runs commit nearly everything...
  EXPECT_GT(run.altered.committed, 7000u);
  // ...and the burst-induced queueing yields a small positive score.
  EXPECT_FALSE(run.score.infinite);
}

}  // namespace
}  // namespace stabl::core
