// Workload shape tests: average preservation, phase behaviour, and the
// client actually producing the requested processes.
#include "core/workload.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "core/experiment.hpp"

namespace stabl::core {
namespace {

double average_rate(const WorkloadConfig& config, sim::Duration duration,
                    int samples = 4000) {
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const auto at = sim::Duration{duration.count() * i / samples};
    sum += workload_rate(config, at, duration);
  }
  return sum / samples;
}

TEST(Workload, ConstantIsConstant) {
  WorkloadConfig config;
  config.tps = 40.0;
  for (int s = 0; s < 400; s += 13) {
    EXPECT_DOUBLE_EQ(workload_rate(config, sim::sec(s), sim::sec(400)),
                     40.0);
  }
}

TEST(Workload, BurstyAlternatesPhases) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kBursty;
  config.tps = 40.0;
  config.burst_period = sim::sec(20);
  config.burst_factor = 3.0;
  const double high = workload_rate(config, sim::sec(5), sim::sec(400));
  const double low = workload_rate(config, sim::sec(25), sim::sec(400));
  EXPECT_NEAR(high, 60.0, 1e-9);
  EXPECT_NEAR(low, 20.0, 1e-9);
  EXPECT_NEAR(high / low, 3.0, 1e-9);
}

TEST(Workload, BurstyPreservesAverage) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kBursty;
  config.tps = 40.0;
  EXPECT_NEAR(average_rate(config, sim::sec(400)), 40.0, 0.5);
}

TEST(Workload, RampGrowsAndPreservesAverage) {
  WorkloadConfig config;
  config.shape = WorkloadShape::kRamp;
  config.tps = 40.0;
  config.ramp_start_fraction = 0.2;
  const double early = workload_rate(config, sim::sec(0), sim::sec(400));
  const double late = workload_rate(config, sim::sec(399), sim::sec(400));
  EXPECT_NEAR(early, 8.0, 0.5);
  EXPECT_NEAR(late, 72.0, 0.5);
  EXPECT_NEAR(average_rate(config, sim::sec(400)), 40.0, 0.5);
}

TEST(Workload, IntervalInvertsRate) {
  WorkloadConfig config;
  config.tps = 50.0;
  EXPECT_EQ(workload_interval(config, sim::sec(1), sim::sec(100)),
            sim::us(20000));
}

TEST(Workload, ClientFollowsBurstyShape) {
  testing::Harness harness;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 77;
  harness.nodes = redbelly::make_cluster(harness.simulation,
                                         harness.network, node_config);
  ClientConfig config;
  config.id = 10;
  config.account = 0;
  config.recipient = 999;
  config.endpoints = {0};
  config.tps = 40.0;
  config.stop_at = sim::sec(40);
  config.workload.shape = WorkloadShape::kBursty;
  config.workload.burst_period = sim::sec(10);
  config.workload.burst_factor = 3.0;
  harness.clients.push_back(std::make_unique<ClientMachine>(
      harness.simulation, harness.network, config));
  harness.start_all();
  harness.simulation.run_until(sim::sec(10));
  const auto high_phase = harness.clients[0]->submitted();
  harness.simulation.run_until(sim::sec(20));
  const auto low_phase = harness.clients[0]->submitted() - high_phase;
  EXPECT_NEAR(static_cast<double>(high_phase), 570.0, 60.0);  // ~60 tps
  EXPECT_NEAR(static_cast<double>(low_phase), 200.0, 40.0);   // ~20 tps
}

TEST(Workload, ExperimentRunsBurstyAlteredAgainstConstantBaseline) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(40);
  config.workload.shape = WorkloadShape::kBursty;
  config.workload.burst_period = sim::sec(10);
  const SensitivityRun run = run_sensitivity(config);
  // Same average load: both runs commit nearly everything...
  EXPECT_GT(run.altered.committed, 7000u);
  // ...and the burst-induced queueing yields a small positive score.
  EXPECT_FALSE(run.score.infinite);
}

}  // namespace
}  // namespace stabl::core
