#include "sim/process.hpp"

#include <gtest/gtest.h>

namespace stabl::sim {
namespace {

class TestProcess final : public Process {
 public:
  using Process::Process;
  using Process::set_timer;

  int starts = 0;
  int crashes = 0;

 protected:
  void on_start() override { ++starts; }
  void on_crash() override { ++crashes; }
};

TEST(Process, StartsDeadThenBoots) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  EXPECT_FALSE(process.alive());
  process.start();
  EXPECT_TRUE(process.alive());
  EXPECT_EQ(process.starts, 1);
  EXPECT_EQ(process.restarts(), 0);
}

TEST(Process, DoubleStartIsNoOp) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.start();
  process.start();
  EXPECT_EQ(process.starts, 1);
}

TEST(Process, KillCancelsTimers) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.start();
  bool fired = false;
  process.set_timer(ms(10), [&] { fired = true; });
  process.kill();
  EXPECT_EQ(process.crashes, 1);
  simulation.run();
  EXPECT_FALSE(fired);
}

TEST(Process, KillWhenDeadIsNoOp) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.kill();
  EXPECT_EQ(process.crashes, 0);
}

TEST(Process, RestartCountsCycles) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.start();
  process.kill();
  process.start();
  EXPECT_EQ(process.restarts(), 1);
  EXPECT_EQ(process.starts, 2);
  EXPECT_EQ(process.crashes, 1);
}

TEST(Process, TimerFiresWhileAlive) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.start();
  bool fired = false;
  process.set_timer(ms(5), [&] { fired = true; });
  simulation.run();
  EXPECT_TRUE(fired);
}

TEST(Process, TimerOnDeadProcessNeverSchedules) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  bool fired = false;
  EXPECT_EQ(process.set_timer(ms(5), [&] { fired = true; }), kInvalidTimer);
  simulation.run();
  EXPECT_FALSE(fired);
}

TEST(Process, TimersSurviveRestartBoundary) {
  // Timers set before a kill never fire; timers set after restart do.
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.start();
  int fired = 0;
  process.set_timer(ms(10), [&] { fired += 1; });
  simulation.schedule_after(ms(5), [&] {
    process.kill();
    process.start();
    process.set_timer(ms(10), [&] { fired += 10; });
  });
  simulation.run();
  EXPECT_EQ(fired, 10);
}

TEST(Process, TimerCallbackCanKillOwnProcess) {
  Simulation simulation(1);
  TestProcess process(simulation, 0);
  process.start();
  bool second_fired = false;
  process.set_timer(ms(10), [&] { process.kill(); });
  process.set_timer(ms(10), [&] { second_fired = true; });
  simulation.run();
  // The sibling timer scheduled for the same instant must not run after
  // the crash.
  EXPECT_FALSE(second_fired);
}

}  // namespace
}  // namespace stabl::sim
