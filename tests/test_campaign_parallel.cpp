// Tests for the parallel campaign engine: the work-stealing-free thread
// pool, byte-identical serial-vs-parallel campaign output, seed-sweep
// aggregation, worst-seed gating, and EventQueue bookkeeping when a
// simulation is constructed per worker thread.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "sim/event_queue.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleJobIsSerialOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no lock needed: serial by construction
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no indexes to run"; });
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("cell failed");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ClampsZeroJobsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.jobs(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_for(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

// ------------------------------------------- EventQueue per worker thread
// Each worker constructs its own simulation state; the queue's cancel
// bookkeeping (eager removal from the indexed heap, slot recycling
// through the free list) must stay consistent with no sharing between
// threads.

TEST(EventQueuePerThread, CancelBookkeepingStaysConsistentPerThread) {
  ThreadPool pool(4);
  pool.parallel_for(8, [](std::size_t lane) {
    sim::EventQueue queue;
    std::vector<sim::TimerId> ids;
    const int n = 300 + static_cast<int>(lane);
    for (int i = 0; i < n; ++i) {
      ids.push_back(queue.schedule(sim::ms(i % 50), [] {}));
    }
    std::size_t live = ids.size();
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      queue.cancel(ids[i]);
      --live;
    }
    ASSERT_EQ(queue.size(), live);
    EXPECT_FALSE(queue.empty());
    sim::Time at{};
    sim::Time last{-1};
    std::size_t popped = 0;
    while (!queue.empty()) {
      ASSERT_GE(queue.next_time(), last);
      last = queue.next_time();
      queue.pop(at)();
      ++popped;
      ASSERT_EQ(queue.size(), live - popped);
    }
    EXPECT_EQ(popped, live);
    EXPECT_EQ(queue.size(), 0u);
  });
}

// ------------------------------------------------- campaign determinism

CampaignConfig tiny_campaign() {
  CampaignConfig config;
  config.chains = {ChainKind::kRedbelly};
  config.faults = {FaultType::kNone, FaultType::kCrash};
  config.base.duration = sim::sec(30);
  config.base.inject_at = sim::sec(10);
  config.base.recover_at = sim::sec(20);
  config.num_seeds = 2;
  return config;
}

TEST(CampaignParallel, ParallelOutputByteIdenticalToSerial) {
  CampaignConfig serial = tiny_campaign();
  serial.jobs = 1;
  CampaignConfig parallel = tiny_campaign();
  parallel.jobs = 4;
  const CampaignResult a = run_campaign(serial);
  const CampaignResult b = run_campaign(parallel);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.radar.to_table(), b.radar.to_table());
  EXPECT_EQ(a.radar.sweep_table(), b.radar.sweep_table());
}

TEST(CampaignParallel, CallbackSerializedAndCalledPerCellSeed) {
  CampaignConfig config = tiny_campaign();
  config.jobs = 4;
  std::atomic<int> concurrent{0};
  std::atomic<int> calls{0};
  config.on_cell_done = [&](ChainKind, FaultType, std::uint64_t,
                            const SensitivityRun&) {
    EXPECT_EQ(concurrent.fetch_add(1), 0) << "callback must be serialized";
    calls.fetch_add(1);
    concurrent.fetch_sub(1);
  };
  run_campaign(config);
  EXPECT_EQ(calls.load(), 4);  // 1 chain x 2 faults x 2 seeds
}

// ------------------------------------------------------------ seed sweep

TEST(CampaignSweep, AggregatesAcrossSeeds) {
  const CampaignResult result = run_campaign(tiny_campaign());
  EXPECT_EQ(result.seeds, (std::vector<std::uint64_t>{42, 43}));
  const SeedSweepStats* stats =
      result.sweep(ChainKind::kRedbelly, FaultType::kCrash);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->seeds, 2u);
  EXPECT_EQ(stats->finite, 2u) << "Redbelly survives f = t crashes";
  EXPECT_EQ(stats->liveness_losses, 0u);
  EXPECT_LE(stats->min, stats->mean);
  EXPECT_LE(stats->mean, stats->max);
  EXPECT_GE(stats->stddev, 0.0);
  const auto& runs =
      result.seed_runs.at({ChainKind::kRedbelly, FaultType::kCrash});
  ASSERT_EQ(runs.size(), 2u);
  // The representative run is the first seed's.
  const SensitivityRun* rep =
      result.get(ChainKind::kRedbelly, FaultType::kCrash);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->score.value, runs.front().score.value);
}

TEST(CampaignSweep, ExplicitSeedListWinsOverNumSeeds) {
  CampaignConfig config;
  config.seeds = {7, 99, 3};
  config.num_seeds = 10;
  EXPECT_EQ(config.seed_list(), (std::vector<std::uint64_t>{7, 99, 3}));
  config.seeds.clear();
  config.num_seeds = 3;
  config.base.seed = 5;
  EXPECT_EQ(config.seed_list(), (std::vector<std::uint64_t>{5, 6, 7}));
}

TEST(AggregateSeedSweep, StatsOverFiniteScoresOnly) {
  SensitivityRun finite1;
  finite1.score.value = 2.0;
  SensitivityRun finite2;
  finite2.score.value = 6.0;
  SensitivityRun dead;
  dead.score.infinite = true;
  dead.score.value = std::numeric_limits<double>::infinity();
  const SeedSweepStats stats =
      aggregate_seed_sweep({finite1, dead, finite2});
  EXPECT_EQ(stats.seeds, 3u);
  EXPECT_EQ(stats.finite, 2u);
  EXPECT_EQ(stats.liveness_losses, 1u);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_NEAR(stats.stddev, 2.828427, 1e-5);  // sample stddev of {2, 6}
}

// ---------------------------------------------------- worst-seed gating

CampaignResult hand_built_result(double min_score, double max_score,
                                 std::size_t losses) {
  CampaignResult result;
  const CampaignResult::CellKey key{ChainKind::kRedbelly,
                                    FaultType::kCrash};
  SensitivityRun rep;
  rep.score.value = min_score;
  rep.altered.live_at_end = true;
  result.runs.emplace(key, rep);
  SeedSweepStats stats;
  stats.seeds = 3;
  stats.finite = 3 - losses;
  stats.liveness_losses = losses;
  stats.mean = (min_score + max_score) / 2.0;
  stats.min = min_score;
  stats.max = max_score;
  result.sweeps.emplace(key, stats);
  return result;
}

TEST(CampaignGateCheck, GatesOnWorstSeed) {
  CampaignGate gate;
  gate.max_score[FaultType::kCrash] = 4.0;
  // Representative (first-seed) score 1.0 passes, but the worst seed
  // scored 9.0: the gate must flag the cell.
  const auto violations =
      check_gate(hand_built_result(1.0, 9.0, 0), gate);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("exceeds gate"), std::string::npos);
  EXPECT_NE(violations[0].find("worst of 3 seeds"), std::string::npos);
  // All seeds within the bound: no violation.
  EXPECT_TRUE(check_gate(hand_built_result(1.0, 3.5, 0), gate).empty());
}

TEST(CampaignGateCheck, AnySeedLivenessLossIsFlagged) {
  CampaignGate gate;
  gate.max_score[FaultType::kCrash] = 1e9;
  const auto violations =
      check_gate(hand_built_result(1.0, 2.0, 1), gate);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("unexpected liveness loss"),
            std::string::npos);
  EXPECT_NE(violations[0].find("1/3 seeds"), std::string::npos);
}

TEST(CampaignGateCheck, ExpectedInfiniteRequiresEverySeedDead) {
  CampaignGate gate;
  gate.expected_infinite = {{ChainKind::kRedbelly, FaultType::kCrash}};
  // One seed survived: violation.
  const auto violations =
      check_gate(hand_built_result(1.0, 2.0, 2), gate);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("expected liveness loss"),
            std::string::npos);
  // Every seed dead: passes.
  EXPECT_TRUE(check_gate(hand_built_result(0.0, 0.0, 3), gate).empty());
}

}  // namespace
}  // namespace stabl::core
