// Property sweep across seeds and chains (TEST_P): every chain's baseline
// must commit the workload, keep replicas consistent and never execute a
// transaction twice — for arbitrary seeds, not just the calibrated one.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace stabl::core {
namespace {

struct SweepCase {
  ChainKind chain;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return to_string(info.param.chain) + "_seed" +
         std::to_string(info.param.seed);
}

class BaselineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BaselineSweep, CommitsWorkloadAndStaysLive) {
  ExperimentConfig config;
  config.chain = GetParam().chain;
  config.seed = GetParam().seed;
  config.duration = sim::sec(45);
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  // 45 s at 200 TPS with a ~0.5 s client start: 8900 submitted; allow the
  // slowest chain a few seconds of in-flight tail.
  EXPECT_EQ(result.submitted, 8900u);
  EXPECT_GT(result.committed, 7600u);
  EXPECT_GT(result.mean_latency_s, 0.0);
  EXPECT_LT(result.mean_latency_s, 6.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllChainsSeeds, BaselineSweep,
    ::testing::Values(
        SweepCase{ChainKind::kAlgorand, 1}, SweepCase{ChainKind::kAlgorand, 2},
        SweepCase{ChainKind::kAlgorand, 3}, SweepCase{ChainKind::kAptos, 1},
        SweepCase{ChainKind::kAptos, 2}, SweepCase{ChainKind::kAptos, 3},
        SweepCase{ChainKind::kAvalanche, 1},
        SweepCase{ChainKind::kAvalanche, 2},
        SweepCase{ChainKind::kAvalanche, 3},
        SweepCase{ChainKind::kRedbelly, 1},
        SweepCase{ChainKind::kRedbelly, 2},
        SweepCase{ChainKind::kRedbelly, 3},
        SweepCase{ChainKind::kSolana, 1}, SweepCase{ChainKind::kSolana, 2},
        SweepCase{ChainKind::kSolana, 3}),
    case_name);

class CrashSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CrashSweep, SurvivesFEqualsTCrashes) {
  ExperimentConfig config;
  config.chain = GetParam().chain;
  config.seed = GetParam().seed;
  config.duration = sim::sec(90);
  config.inject_at = sim::sec(30);
  config.fault = FaultType::kCrash;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end) << "f = t crashes must not kill liveness";
  EXPECT_GT(result.committed, 12000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllChainsSeeds, CrashSweep,
    ::testing::Values(
        SweepCase{ChainKind::kAlgorand, 7}, SweepCase{ChainKind::kAptos, 7},
        SweepCase{ChainKind::kAvalanche, 7},
        SweepCase{ChainKind::kRedbelly, 7},
        SweepCase{ChainKind::kSolana, 7},
        SweepCase{ChainKind::kRedbelly, 8},
        SweepCase{ChainKind::kSolana, 8}),
    case_name);

class HaltSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(HaltSweep, QuorumLossHaltsEveryChain) {
  // f = t+1 permanent crashes: no BFT chain may keep committing.
  ExperimentConfig config;
  config.chain = GetParam().chain;
  config.seed = GetParam().seed;
  config.duration = sim::sec(90);
  config.inject_at = sim::sec(30);
  config.fault = FaultType::kCrash;
  config.fault_count =
      static_cast<int>(fault_tolerance(config.chain, config.n)) + 1;
  const ExperimentResult result = run_experiment(config);
  EXPECT_FALSE(result.live_at_end);
  EXPECT_LT(result.committed, 7500u);
}

INSTANTIATE_TEST_SUITE_P(
    AllChains, HaltSweep,
    ::testing::Values(
        SweepCase{ChainKind::kAlgorand, 5}, SweepCase{ChainKind::kAptos, 5},
        SweepCase{ChainKind::kAvalanche, 5},
        SweepCase{ChainKind::kRedbelly, 5},
        SweepCase{ChainKind::kSolana, 5}),
    case_name);

}  // namespace
}  // namespace stabl::core
