// Chaos engine (core/chaos.hpp): schedule generator validity and
// determinism, JSON repro round-trips, the delta-debugging shrinker on a
// synthetic evaluator, and campaign-level byte-determinism across thread
// counts.
#include <gtest/gtest.h>

#include <set>

#include "core/chaos.hpp"
#include "core/fault.hpp"
#include "sim/rng.hpp"

namespace stabl::core {
namespace {

TEST(ChaosGenerator, EverySampledScheduleIsValidAndCanonical) {
  const ChaosGenConfig config;
  sim::Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const FaultSchedule schedule = generate_schedule(rng, config);
    ASSERT_GE(schedule.plans.size(), config.min_plans);
    ASSERT_LE(schedule.plans.size(), config.max_plans);
    for (const FaultPlan& plan : schedule.plans) {
      EXPECT_EQ(validate(plan, config.n), "");
      // Entry nodes (0..4) carry client traffic and are off-limits by
      // default.
      for (const net::NodeId target : plan.targets) {
        EXPECT_GE(target, config.entry_nodes);
        EXPECT_LT(target, config.n);
      }
      if (uses_recovery_window(plan.type)) {
        EXPECT_GE(sim::to_seconds(plan.inject_at),
                  config.earliest_inject_s);
        EXPECT_LE(sim::to_seconds(plan.recover_at),
                  config.latest_recover_s);
      }
      // canonical() is idempotent on generator output.
      const FaultPlan again = canonical(plan);
      EXPECT_EQ(again.targets, plan.targets);
      EXPECT_EQ(again.recover_at, plan.recover_at);
    }
  }
}

TEST(ChaosGenerator, SameRngStateSameSchedule) {
  const ChaosGenConfig config;
  sim::Rng a(99);
  sim::Rng b(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(schedule_to_json(generate_schedule(a, config)),
              schedule_to_json(generate_schedule(b, config)));
  }
}

TEST(ChaosGenerator, DeriveGivesOrderIndependentStreams) {
  const sim::Rng root(42);
  sim::Rng forward_first = root.derive(1);
  // Deriving other streams in between must not disturb stream 1.
  (void)root.derive(7);
  (void)root.derive(3);
  sim::Rng forward_second = root.derive(1);
  EXPECT_EQ(forward_first.next_u64(), forward_second.next_u64());
  // Distinct streams diverge.
  EXPECT_NE(root.derive(1).next_u64(), root.derive(2).next_u64());
}

TEST(ChaosGenerator, EntryTargetsCanBeOptedIn) {
  ChaosGenConfig config;
  config.allow_entry_targets = true;
  config.max_targets = 10;
  sim::Rng rng(5);
  std::set<net::NodeId> seen;
  for (int i = 0; i < 100; ++i) {
    for (const FaultPlan& plan : generate_schedule(rng, config).plans) {
      seen.insert(plan.targets.begin(), plan.targets.end());
    }
  }
  EXPECT_TRUE(seen.contains(0));  // entry nodes become fair game
}

TEST(ChaosJson, RoundTripIsByteStable) {
  const ChaosGenConfig config;
  sim::Rng rng(4242);
  for (int i = 0; i < 100; ++i) {
    const FaultSchedule schedule = generate_schedule(rng, config);
    const std::string json = schedule_to_json(schedule);
    const FaultSchedule parsed = schedule_from_json(json);
    EXPECT_EQ(schedule_to_json(parsed), json);
    ASSERT_EQ(parsed.plans.size(), schedule.plans.size());
    for (std::size_t p = 0; p < parsed.plans.size(); ++p) {
      EXPECT_EQ(parsed.plans[p].type, schedule.plans[p].type);
      EXPECT_EQ(parsed.plans[p].targets, schedule.plans[p].targets);
      EXPECT_EQ(parsed.plans[p].inject_at, schedule.plans[p].inject_at);
      EXPECT_EQ(parsed.plans[p].recover_at, schedule.plans[p].recover_at);
    }
  }
}

TEST(ChaosJson, MalformedDocumentsAreRejected) {
  EXPECT_THROW(schedule_from_json(""), std::invalid_argument);
  EXPECT_THROW(schedule_from_json("{\"plans\":"), std::invalid_argument);
  EXPECT_THROW(schedule_from_json("{\"nope\":[]}"), std::invalid_argument);
  EXPECT_THROW(
      schedule_from_json("{\"plans\":[{\"type\":\"warp\"}]}"),
      std::invalid_argument);
  EXPECT_THROW(
      schedule_from_json("{\"plans\":[{\"frobnicate\":1}]}"),
      std::invalid_argument);
  EXPECT_THROW(schedule_from_json("{\"plans\":[]} trailing"),
               std::invalid_argument);
}

TEST(ChaosJson, EmptyScheduleRoundTrips) {
  EXPECT_EQ(schedule_to_json(schedule_from_json("{\"plans\":[]}")),
            "{\"plans\":[]}");
}

// Synthetic shrinker target: the violation fires iff a partition plan
// targeting node 7 is present with a window of at least 4 s. Everything
// else in the schedule is noise the shrinker must strip.
OracleReport synthetic_evaluate(const FaultSchedule& schedule) {
  OracleReport report;
  OracleFinding finding;
  finding.oracle = "agreement";
  for (const FaultPlan& plan : schedule.plans) {
    const double window = sim::to_seconds(plan.recover_at) -
                          sim::to_seconds(plan.inject_at);
    if (plan.type == FaultType::kPartition && window >= 4.0 &&
        std::count(plan.targets.begin(), plan.targets.end(), 7) > 0) {
      finding.verdict = OracleVerdict::kViolation;
      finding.detail = "synthetic fork";
    }
  }
  report.findings.push_back(finding);
  report.verdict = finding.verdict;
  return report;
}

TEST(ChaosShrinker, StripsNoisePlansTargetsAndTime) {
  FaultSchedule schedule;
  FaultPlan partition;
  partition.type = FaultType::kPartition;
  partition.targets = {5, 6, 7, 8};
  partition.inject_at = sim::sec(40);
  partition.recover_at = sim::sec(104);
  schedule.add(partition);
  FaultPlan gray;
  gray.type = FaultType::kGray;
  gray.targets = {9};
  schedule.add(gray);
  FaultPlan churn;
  churn.type = FaultType::kChurn;
  churn.targets = {5};
  schedule.add(churn);

  const std::optional<ShrinkResult> shrunk =
      shrink_schedule(schedule, synthetic_evaluate);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->oracle, "agreement");
  EXPECT_EQ(shrunk->initial_plans, 3u);
  ASSERT_EQ(shrunk->schedule.plans.size(), 1u);
  const FaultPlan& minimal = shrunk->schedule.plans.front();
  EXPECT_EQ(minimal.type, FaultType::kPartition);
  EXPECT_EQ(minimal.targets, (std::vector<net::NodeId>{7}));
  // 64 s window halves down to the smallest multiple still >= 4 s.
  const double window = sim::to_seconds(minimal.recover_at) -
                        sim::to_seconds(minimal.inject_at);
  EXPECT_GE(window, 4.0);
  EXPECT_LE(window, 8.0);
  EXPECT_TRUE(synthetic_evaluate(shrunk->schedule).violated());
}

TEST(ChaosShrinker, ReturnsNulloptWhenNothingViolates) {
  FaultSchedule schedule;
  FaultPlan gray;
  gray.type = FaultType::kGray;
  gray.targets = {9};
  schedule.add(gray);
  EXPECT_FALSE(shrink_schedule(schedule, [](const FaultSchedule&) {
                 return OracleReport{};
               }).has_value());
}

TEST(ChaosShrinker, RespectsTheRunBudget) {
  FaultSchedule schedule;
  for (net::NodeId id = 5; id < 9; ++id) {
    FaultPlan plan;
    plan.type = FaultType::kPartition;
    plan.targets = {id, 7};
    schedule.add(plan);
  }
  std::size_t calls = 0;
  ShrinkOptions options;
  options.max_runs = 3;
  const auto counted = [&](const FaultSchedule& candidate) {
    ++calls;
    return synthetic_evaluate(candidate);
  };
  const std::optional<ShrinkResult> shrunk =
      shrink_schedule(schedule, counted, options);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_LE(calls, options.max_runs);
  EXPECT_EQ(shrunk->runs, calls);
}

// ------------------------------------------------------------- campaigns

ChaosCampaignConfig small_campaign() {
  ChaosCampaignConfig config;
  config.chains = {ChainKind::kRedbelly, ChainKind::kAptos};
  config.trials_per_chain = 2;
  config.seed = 7;
  config.base.duration = sim::sec(60);
  return config;
}

TEST(ChaosCampaign, DeterministicAcrossRepeatRuns) {
  const ChaosCampaignResult first = run_chaos_campaign(small_campaign());
  const ChaosCampaignResult second = run_chaos_campaign(small_campaign());
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_EQ(first.summary_table(), second.summary_table());
}

TEST(ChaosCampaign, ByteIdenticalForAnyJobCount) {
  ChaosCampaignConfig serial = small_campaign();
  serial.jobs = 1;
  ChaosCampaignConfig parallel = small_campaign();
  parallel.jobs = 4;
  EXPECT_EQ(run_chaos_campaign(serial).to_json(),
            run_chaos_campaign(parallel).to_json());
}

TEST(ChaosCampaign, ChainReorderingKeepsSchedules) {
  // Trial schedules key off the chain's identity, not its list position.
  ChaosCampaignConfig forward = small_campaign();
  ChaosCampaignConfig reversed = small_campaign();
  reversed.chains = {ChainKind::kAptos, ChainKind::kRedbelly};
  const ChaosCampaignResult a = run_chaos_campaign(forward);
  const ChaosCampaignResult b = run_chaos_campaign(reversed);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (const ChaosTrial& trial : a.trials) {
    bool matched = false;
    for (const ChaosTrial& other : b.trials) {
      if (other.chain == trial.chain && other.trial == trial.trial) {
        EXPECT_EQ(schedule_to_json(other.schedule),
                  schedule_to_json(trial.schedule));
        EXPECT_EQ(other.experiment_seed, trial.experiment_seed);
        matched = true;
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST(ChaosCampaign, TrialConfigCarriesTheScheduleOnly) {
  const ChaosCampaignConfig config = small_campaign();
  FaultSchedule schedule;
  FaultPlan plan;
  plan.type = FaultType::kLoss;
  plan.targets = {6};
  schedule.add(plan);
  const ExperimentConfig cell =
      chaos_trial_config(config, ChainKind::kSolana, 99, schedule);
  EXPECT_EQ(cell.chain, ChainKind::kSolana);
  EXPECT_EQ(cell.fault, FaultType::kNone);
  EXPECT_EQ(cell.seed, 99u);
  EXPECT_TRUE(cell.capture_replicas);
  ASSERT_EQ(cell.extra_faults.plans.size(), 1u);
  EXPECT_EQ(cell.extra_faults.plans.front().type, FaultType::kLoss);
}

}  // namespace
}  // namespace stabl::core
