#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace stabl::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(ms(30), [&] { order.push_back(3); });
  queue.schedule(ms(10), [&] { order.push_back(1); });
  queue.schedule(ms(20), [&] { order.push_back(2); });
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(at, ms(30));
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(ms(5), [&, i] { order.push_back(i); });
  }
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const TimerId id = queue.schedule(ms(10), [&] { fired = true; });
  queue.cancel(id);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  const TimerId id = queue.schedule(ms(10), [] {});
  queue.cancel(id);
  queue.cancel(id);
  queue.cancel(kInvalidTimer);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(ms(10), [&] { order.push_back(1); });
  const TimerId id = queue.schedule(ms(20), [&] { order.push_back(2); });
  queue.schedule(ms(30), [&] { order.push_back(3); });
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 2u);
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue queue;
  const TimerId id = queue.schedule(ms(5), [] {});
  queue.schedule(ms(15), [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.next_time(), ms(15));
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue queue;
  const TimerId id = queue.schedule(ms(1), [] {});
  Time at{};
  queue.pop(at)();
  queue.cancel(id);  // must not assert or corrupt
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue queue;
  Time last{-1};
  for (int i = 0; i < 10000; ++i) {
    queue.schedule(ms((i * 7919) % 1000), [] {});
  }
  Time at{};
  while (!queue.empty()) {
    queue.pop(at);
    EXPECT_GE(at, last);
    last = at;
  }
}

// Misuse-on-empty must fail loudly in every build type, not only under
// assert: a release-build caller of the old queue hit UB (top() on an
// empty container).
TEST(EventQueue, PopOnEmptyThrowsLogicError) {
  EventQueue queue;
  Time at{};
  EXPECT_THROW(queue.pop(at), std::logic_error);
  queue.schedule(ms(1), [] {});
  queue.pop(at);
  EXPECT_THROW(queue.pop(at), std::logic_error);
}

TEST(EventQueue, NextTimeOnEmptyThrowsLogicError) {
  EventQueue queue;
  EXPECT_THROW(static_cast<void>(queue.next_time()), std::logic_error);
}

TEST(EventQueue, PopReportsTheScheduledTimerId) {
  EventQueue queue;
  const TimerId a = queue.schedule(ms(2), [] {});
  const TimerId b = queue.schedule(ms(1), [] {});
  Time at{};
  TimerId fired = kInvalidTimer;
  queue.pop(at, &fired);
  EXPECT_EQ(fired, b);
  queue.pop(at, &fired);
  EXPECT_EQ(fired, a);
}

// Generation tags make a stale handle harmless: cancelling a TimerId
// whose pool slot has been recycled must not touch the new occupant.
TEST(EventQueue, StaleHandleAfterSlotReuseIsNoOp) {
  EventQueue queue;
  const TimerId old_id = queue.schedule(ms(10), [] {});
  queue.cancel(old_id);
  bool fired = false;
  const TimerId new_id = queue.schedule(ms(20), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  queue.cancel(old_id);  // stale: same slot, older generation
  EXPECT_EQ(queue.size(), 1u);
  Time at{};
  queue.pop(at)();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, FiredHandleIsStaleForItsRecycledSlot) {
  EventQueue queue;
  const TimerId fired_id = queue.schedule(ms(1), [] {});
  Time at{};
  queue.pop(at)();
  const TimerId reuse = queue.schedule(ms(2), [] {});
  queue.cancel(fired_id);  // must not cancel the slot's new occupant
  EXPECT_EQ(queue.size(), 1u);
  queue.cancel(reuse);
  EXPECT_TRUE(queue.empty());
}

// Regression for the lazy-cancel leak: the old design kept a heap entry
// plus a cancelled-set entry per cancelled timer until its fire time, so
// timeout churn (schedule far in the future, cancel long before firing)
// grew internal storage without bound. Eager cancellation must keep the
// pool bounded by the peak live population, no matter how many
// far-future timers churn through.
TEST(EventQueue, CancelChurnKeepsInternalStorageBounded) {
  EventQueue queue;
  std::vector<TimerId> live;
  constexpr int kSteady = 64;
  for (int i = 0; i < kSteady; ++i) {
    live.push_back(queue.schedule(sec(1000) + ms(i), [] {}));
  }
  Rng rng(7);
  for (int round = 0; round < 100000; ++round) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(live.size()));
    queue.cancel(live[pick]);
    live[pick] = queue.schedule(sec(2000) + ms(round), [] {});
    ASSERT_EQ(queue.size(), static_cast<std::size_t>(kSteady));
  }
  // The slab never outgrows the steady-state population (free-list reuse),
  // and size() reflects exactly the live events.
  EXPECT_LE(queue.allocated_slots(), static_cast<std::size_t>(kSteady) + 1);
}

// Tie order is part of the determinism contract: events scheduled for the
// same instant pop in schedule order, and cancelling neighbours must not
// reshuffle the survivors (indexed-heap removal swaps entries around).
TEST(EventQueue, FifoTiesSurviveCancelChurn) {
  EventQueue queue;
  std::vector<int> order;
  std::vector<TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(queue.schedule(ms(5), [&, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 3) queue.cancel(ids[i]);
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

// Property test against a reference model with the legacy queue's
// observable semantics: a map ordered by (time, schedule order) — the old
// (at, TimerId) heap order. A seeded interleaving of schedule, cancel and
// pop must produce the exact pop sequence the old implementation gave.
TEST(EventQueue, SeededChurnMatchesLegacyReferenceModel) {
  EventQueue queue;
  std::map<std::pair<Time, std::uint64_t>, int> reference;
  std::vector<std::pair<TimerId, std::pair<Time, std::uint64_t>>> live;
  Rng rng(0xF00D);
  std::uint64_t order_counter = 0;
  int payload_counter = 0;
  int last_fired = -1;
  Time now{0};
  for (int step = 0; step < 50000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.5 || queue.empty()) {
      const Time at =
          now + Duration{1 + static_cast<std::int64_t>(rng.uniform() * 1e4)};
      const int payload = payload_counter++;
      const std::uint64_t order = order_counter++;
      const TimerId id =
          queue.schedule(at, [payload, &last_fired] { last_fired = payload; });
      reference.emplace(std::make_pair(at, order), payload);
      live.emplace_back(id, std::make_pair(at, order));
    } else if (roll < 0.65 && !live.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(live.size()));
      queue.cancel(live[pick].first);
      reference.erase(live[pick].second);
      live[pick] = live.back();
      live.pop_back();
    } else {
      Time at{};
      TimerId fired = kInvalidTimer;
      auto action = queue.pop(at, &fired);
      action();
      ASSERT_FALSE(reference.empty());
      const auto expected = reference.begin();
      ASSERT_EQ(at, expected->first.first) << "pop time diverged";
      ASSERT_EQ(last_fired, expected->second) << "pop tie order diverged";
      reference.erase(expected);
      now = at;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].first == fired) {
          live[i] = live.back();
          live.pop_back();
          break;
        }
      }
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  // Drain: remaining pops must come out in exact reference order,
  // including the payload of every same-instant tie.
  while (!queue.empty()) {
    Time at{};
    queue.pop(at)();
    ASSERT_EQ(at, reference.begin()->first.first);
    ASSERT_EQ(last_fired, reference.begin()->second);
    reference.erase(reference.begin());
  }
  EXPECT_TRUE(reference.empty());
}

TEST(EventQueue, ReserveDoesNotPerturbBehavior) {
  EventQueue queue;
  queue.reserve(4096);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    queue.schedule(ms(8 - i), [&, i] { order.push_back(i); });
  }
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

}  // namespace
}  // namespace stabl::sim
