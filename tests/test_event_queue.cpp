#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stabl::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(ms(30), [&] { order.push_back(3); });
  queue.schedule(ms(10), [&] { order.push_back(1); });
  queue.schedule(ms(20), [&] { order.push_back(2); });
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(at, ms(30));
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(ms(5), [&, i] { order.push_back(i); });
  }
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const TimerId id = queue.schedule(ms(10), [&] { fired = true; });
  queue.cancel(id);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  const TimerId id = queue.schedule(ms(10), [] {});
  queue.cancel(id);
  queue.cancel(id);
  queue.cancel(kInvalidTimer);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(ms(10), [&] { order.push_back(1); });
  const TimerId id = queue.schedule(ms(20), [&] { order.push_back(2); });
  queue.schedule(ms(30), [&] { order.push_back(3); });
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 2u);
  Time at{};
  while (!queue.empty()) queue.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue queue;
  const TimerId id = queue.schedule(ms(5), [] {});
  queue.schedule(ms(15), [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.next_time(), ms(15));
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue queue;
  const TimerId id = queue.schedule(ms(1), [] {});
  Time at{};
  queue.pop(at)();
  queue.cancel(id);  // must not assert or corrupt
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue queue;
  Time last{-1};
  for (int i = 0; i < 10000; ++i) {
    queue.schedule(ms((i * 7919) % 1000), [] {});
  }
  Time at{};
  while (!queue.empty()) {
    queue.pop(at);
    EXPECT_GE(at, last);
    last = at;
  }
}

}  // namespace
}  // namespace stabl::sim
