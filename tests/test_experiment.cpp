// Integration tests for the experiment runner: geometry, determinism,
// fault defaults, result bookkeeping.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace stabl::core {
namespace {

TEST(FaultToleranceThresholds, MatchPaperTable) {
  // n = 10: Algorand/Avalanche t = ceil(10/5 - 1) = 1; others 3.
  EXPECT_EQ(fault_tolerance(ChainKind::kAlgorand, 10), 1u);
  EXPECT_EQ(fault_tolerance(ChainKind::kAvalanche, 10), 1u);
  EXPECT_EQ(fault_tolerance(ChainKind::kAptos, 10), 3u);
  EXPECT_EQ(fault_tolerance(ChainKind::kRedbelly, 10), 3u);
  EXPECT_EQ(fault_tolerance(ChainKind::kSolana, 10), 3u);
}

TEST(ChainNames, RoundTrip) {
  EXPECT_EQ(to_string(ChainKind::kAlgorand), "algorand");
  EXPECT_EQ(to_string(ChainKind::kSolana), "solana");
  EXPECT_EQ(std::size(kAllChains), 5u);
}

TEST(Experiment, BaselineRedbellyShortRun) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(30);
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.submitted, 5900u);  // 5 clients * 40 tps * 29.5 s
  EXPECT_GT(result.committed, 5500u);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_EQ(result.throughput.size(), 30u);
  EXPECT_GT(result.mean_latency_s, 0.0);
  EXPECT_GE(result.p99_latency_s, result.p50_latency_s);
  EXPECT_GT(result.blocks, 10u);
  EXPECT_GT(result.events, 10000u);
}

TEST(Experiment, DeterministicForSameSeed) {
  ExperimentConfig config;
  config.chain = ChainKind::kAptos;
  config.duration = sim::sec(20);
  config.seed = 123;
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.latencies.size(), b.latencies.size());
  for (std::size_t i = 0; i < a.latencies.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.latencies[i], b.latencies[i]);
  }
}

TEST(Experiment, DifferentSeedsDiffer) {
  ExperimentConfig config;
  config.chain = ChainKind::kAlgorand;
  config.duration = sim::sec(20);
  config.seed = 1;
  const ExperimentResult a = run_experiment(config);
  config.seed = 2;
  const ExperimentResult b = run_experiment(config);
  // The deterministic timer structure keeps event counts close, but the
  // sampled latencies must differ.
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (const double x : a.latencies) sum_a += x;
  for (const double x : b.latencies) sum_b += x;
  EXPECT_NE(sum_a, sum_b);
}

TEST(Experiment, CrashDefaultsToTFaults) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(40);
  config.inject_at = sim::sec(10);
  config.fault = FaultType::kCrash;
  // t = 3 crashes land on nodes 5..7; Redbelly keeps committing.
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, 7000u);
}

TEST(Experiment, ExplicitFaultCountOverridesDefault) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(40);
  config.inject_at = sim::sec(10);
  config.fault = FaultType::kCrash;
  config.fault_count = 4;  // beyond t: the chain halts
  const ExperimentResult result = run_experiment(config);
  EXPECT_FALSE(result.live_at_end);
}

TEST(Experiment, SecureClientRunsFanout) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(30);
  config.fault = FaultType::kSecureClient;
  config.client_fanout = 4;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.live_at_end);
  EXPECT_GT(result.committed, 5000u);
}

TEST(RunSensitivity, PairsBaselineAgainstAltered) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(45);
  config.inject_at = sim::sec(15);
  config.recover_at = sim::sec(30);
  config.fault = FaultType::kTransient;
  const SensitivityRun run = run_sensitivity(config);
  EXPECT_GT(run.baseline.committed, run.altered.committed);
  EXPECT_FALSE(run.score.infinite);
  EXPECT_GT(run.score.value, 0.0);
  EXPECT_GT(run.altered.recovery_seconds, 0.0);
}

TEST(RunSensitivity, DeadAlteredRunScoresInfinite) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.duration = sim::sec(45);
  config.inject_at = sim::sec(15);
  config.fault = FaultType::kCrash;
  config.fault_count = 4;  // > t: halt, no recovery
  const SensitivityRun run = run_sensitivity(config);
  EXPECT_TRUE(run.score.infinite);
}

}  // namespace
}  // namespace stabl::core
