// Aggregate arrival scheduling: cohort collapse, enrolment-order emission,
// high-TPS batching, equivalence with the per-client timer chain it
// replaced, and byte-stability of a full faulted campaign report.
#include "core/arrivals.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chain_test_util.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "core/client.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "core/sensitivity.hpp"
#include "core/serialize.hpp"
#include "core/traffic.hpp"
#include "core/workload.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {
namespace {

struct RecordingSink final : ArrivalSink {
  RecordingSink(int id, std::vector<int>* log) : id(id), log(log) {}
  void generate_arrival() override {
    log->push_back(id);
    ++emitted;
  }
  [[nodiscard]] bool arrivals_active() const override { return active; }
  int id;
  std::vector<int>* log;
  std::uint64_t emitted = 0;
  bool active = true;
};

ArrivalProfile profile_with(double tps, net::NodeId node = 0) {
  ArrivalProfile profile;
  profile.node = node;
  profile.workload.tps = tps;
  profile.start_at = sim::Time{0};
  profile.stop_at = sim::sec(1);
  return profile;
}

TEST(Arrivals, SameProfileSharesOneCohort) {
  sim::Simulation simulation(1);
  ArrivalScheduler scheduler(simulation);
  std::vector<int> log;
  RecordingSink a(0, &log), b(1, &log), c(2, &log);
  scheduler.enroll(profile_with(100.0), &a);
  scheduler.enroll(profile_with(100.0), &b);
  EXPECT_EQ(scheduler.cohorts(), 1u);
  // A different entry node is a different arrival process.
  scheduler.enroll(profile_with(100.0, 3), &c);
  EXPECT_EQ(scheduler.cohorts(), 2u);
}

TEST(Arrivals, MembersEmitInEnrolmentOrderEachTick) {
  sim::Simulation simulation(1);
  ArrivalScheduler scheduler(simulation);
  std::vector<int> log;
  RecordingSink a(0, &log), b(1, &log), c(2, &log);
  for (RecordingSink* sink : {&a, &b, &c}) {
    scheduler.enroll(profile_with(100.0), sink);  // 10 ms tick gap
  }
  simulation.run_until(sim::ms(35));  // ticks at 0, 10, 20, 30 ms
  ASSERT_EQ(log.size(), 12u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i], static_cast<int>(i % 3)) << "at " << i;
  }
  EXPECT_EQ(scheduler.generated(), 12u);
  EXPECT_FALSE(scheduler.interval_floor_bound());
}

TEST(Arrivals, InactiveSinkIsSkippedWithoutStallingTheCohort) {
  sim::Simulation simulation(1);
  ArrivalScheduler scheduler(simulation);
  std::vector<int> log;
  RecordingSink a(0, &log), b(1, &log), c(2, &log);
  for (RecordingSink* sink : {&a, &b, &c}) {
    scheduler.enroll(profile_with(100.0), sink);
  }
  b.active = false;  // a killed client machine
  simulation.run_until(sim::ms(25));  // ticks at 0, 10, 20 ms
  EXPECT_EQ(a.emitted, 3u);
  EXPECT_EQ(b.emitted, 0u);
  EXPECT_EQ(c.emitted, 3u);
  EXPECT_EQ(scheduler.generated(), 6u);
}

TEST(Arrivals, NothingEmitsAtOrAfterStopTime) {
  sim::Simulation simulation(1);
  ArrivalScheduler scheduler(simulation);
  std::vector<int> log;
  RecordingSink a(0, &log);
  ArrivalProfile profile = profile_with(100.0);
  profile.stop_at = sim::ms(25);
  scheduler.enroll(profile, &a);
  simulation.run();  // drains: the tick landing at 30 ms emits nothing
  EXPECT_EQ(a.emitted, 3u);  // 0, 10, 20 ms
}

// Satellite: above 10k TPS the old per-client timer silently clamped to
// the 100 us floor (capping the real rate at 10k); the aggregate process
// must batch arrivals per tick and honour the configured average.
TEST(Arrivals, HighTpsCohortHonoursConfiguredAverage) {
  sim::Simulation simulation(1);
  MetricsRegistry metrics;
  ArrivalScheduler scheduler(simulation, &metrics);
  std::vector<int> log;
  RecordingSink a(0, &log);
  scheduler.enroll(profile_with(25000.0), &a);  // raw gap 40 us < floor
  simulation.run();
  EXPECT_TRUE(scheduler.interval_floor_bound());
  // 5 arrivals per 200 us tick over the 1 s window = the configured 25k,
  // not the 10k the legacy clamp silently delivered.
  EXPECT_NEAR(static_cast<double>(a.emitted), 25000.0, 25000.0 * 0.01);
}

TEST(Arrivals, FloorBindingIsReportedOnceThroughMetrics) {
  sim::Simulation simulation(1);
  MetricsRegistry metrics;
  ArrivalScheduler scheduler(simulation, &metrics);
  std::vector<int> log;
  RecordingSink a(0, &log), b(1, &log);
  scheduler.enroll(profile_with(25000.0), &a);
  scheduler.enroll(profile_with(50000.0, 1), &b);  // second clamped cohort
  simulation.run();
  ASSERT_EQ(metrics.notes().size(), 1u);  // once, not per tick or cohort
  EXPECT_NE(metrics.notes()[0].find("arrival-interval floor"),
            std::string::npos);
}

// The aggregate process must be an exact drop-in for the per-client timer
// chain: same submission times, same tx ids, same commits — the whole
// cluster byte-for-byte. Run the same cell twice, once with each driver.
TEST(Arrivals, BatchedClientMatchesPerClientTimerChain) {
  auto build = [](testing::Harness& harness) {
    chain::NodeConfig node_config;
    node_config.n = 10;
    node_config.network_seed = 77;
    harness.nodes = redbelly::make_cluster(harness.simulation,
                                           harness.network, node_config);
  };
  auto client_config = [] {
    ClientConfig config;
    config.id = 10;
    config.account = 0;
    config.recipient = 999;
    config.endpoints = {0};
    config.tps = 200.0;
    config.stop_at = sim::sec(20);
    return config;
  };

  testing::Harness legacy;
  build(legacy);
  legacy.clients.push_back(std::make_unique<ClientMachine>(
      legacy.simulation, legacy.network, client_config()));
  legacy.start_all();
  legacy.simulation.run_until(sim::sec(25));

  testing::Harness batched;
  build(batched);
  ArrivalScheduler arrivals(batched.simulation);
  ClientConfig config = client_config();
  config.arrivals = &arrivals;
  batched.clients.push_back(std::make_unique<ClientMachine>(
      batched.simulation, batched.network, config));
  batched.start_all();
  batched.simulation.run_until(sim::sec(25));

  EXPECT_EQ(arrivals.cohorts(), 1u);
  EXPECT_EQ(legacy.clients[0]->submitted(), batched.clients[0]->submitted());
  EXPECT_EQ(legacy.clients[0]->submitted_ids(),
            batched.clients[0]->submitted_ids());
  EXPECT_EQ(legacy.clients[0]->committed(), batched.clients[0]->committed());
  EXPECT_EQ(legacy.simulation.events_processed(),
            batched.simulation.events_processed());
}

// ------------------------------------------- population-profile cohorts

// The traffic model's population identity is part of the cohort key:
// clients in different regions sit behind different link latencies and
// clients with different population sizes draw different account mixes,
// so neither may regroup with the others — while identical identities
// still collapse into one aggregate process.
TEST(Arrivals, PopulationIdentitySplitsCohorts) {
  sim::Simulation simulation(1);
  ArrivalScheduler scheduler(simulation);
  std::vector<int> log;
  RecordingSink a(0, &log), b(1, &log), c(2, &log), d(3, &log);
  ArrivalProfile base = profile_with(100.0);
  base.region = 0;
  base.population = 8;
  scheduler.enroll(base, &a);
  scheduler.enroll(base, &b);  // same identity: shared process
  EXPECT_EQ(scheduler.cohorts(), 1u);
  ArrivalProfile far_region = base;
  far_region.region = 1;
  scheduler.enroll(far_region, &c);  // different region: own process
  EXPECT_EQ(scheduler.cohorts(), 2u);
  ArrivalProfile deep_population = base;
  deep_population.population = 32;
  scheduler.enroll(deep_population, &d);  // different population: own
  EXPECT_EQ(scheduler.cohorts(), 3u);
}

// A killed member of a shared population cohort emits nothing while the
// survivors keep the aggregate process running — the same guarantee its
// cancelled per-client timer used to provide.
TEST(Arrivals, KilledMemberOfPopulationCohortEmitsNothing) {
  sim::Simulation simulation(1);
  ArrivalScheduler scheduler(simulation);
  std::vector<int> log;
  RecordingSink a(0, &log), b(1, &log), c(2, &log);
  ArrivalProfile profile = profile_with(100.0);
  profile.region = 2;
  profile.population = 16;
  for (RecordingSink* sink : {&a, &b, &c}) scheduler.enroll(profile, sink);
  EXPECT_EQ(scheduler.cohorts(), 1u);
  b.active = false;
  simulation.run_until(sim::ms(25));  // ticks at 0, 10, 20 ms
  EXPECT_EQ(a.emitted, 3u);
  EXPECT_EQ(b.emitted, 0u);
  EXPECT_EQ(c.emitted, 3u);
  EXPECT_EQ(scheduler.generated(), 6u);
}

// Satellite: a mixed-region, mixed-shape population — four clients, two
// entry nodes, two workload shapes, two regions, Zipf accounts and a
// shared hot wallet — must produce byte-identical submissions through the
// batched scheduler and through per-client timer chains. This pins the
// regrouping logic: every (node, shape, region) combination lands in its
// own cohort, and the global hot-nonce issue order survives the swap.
TEST(Arrivals, MixedRegionMixedShapePopulationMatchesPerClientTimers) {
  TrafficConfig traffic;
  traffic.accounts_per_client = 4;
  traffic.zipf_exponent = 1.0;
  traffic.hot_fraction = 0.25;
  traffic.regions = 2;

  auto run = [&traffic](bool batched) {
    TrafficModel model(traffic);
    testing::Harness harness;
    chain::NodeConfig node_config;
    node_config.n = 10;
    node_config.network_seed = 77;
    harness.nodes = redbelly::make_cluster(harness.simulation,
                                           harness.network, node_config);
    std::optional<ArrivalScheduler> arrivals;
    if (batched) arrivals.emplace(harness.simulation);
    for (std::size_t i = 0; i < 4; ++i) {
      ClientConfig config;
      config.id = static_cast<net::NodeId>(10 + i);
      config.account = static_cast<chain::AccountId>(i);
      config.recipient = static_cast<chain::AccountId>(999 + i);
      config.endpoints = {static_cast<net::NodeId>(i < 2 ? 0 : 1)};
      config.tps = 100.0;
      config.stop_at = sim::sec(10);
      if (i < 2) {
        config.workload.shape = WorkloadShape::kBursty;
        config.workload.burst_period = sim::sec(2);
      }
      if (batched) config.arrivals = &*arrivals;
      config.traffic = make_client_plan(traffic, model, i, config.tx_seed);
      harness.clients.push_back(std::make_unique<ClientMachine>(
          harness.simulation, harness.network, config));
    }
    harness.start_all();
    harness.simulation.run_until(sim::sec(12));
    if (batched) {
      // (node 0, bursty) x regions {0, 1} and (node 1, constant) x
      // regions {0, 1}: four distinct identities, four processes.
      EXPECT_EQ(arrivals->cohorts(), 4u);
    }
    std::vector<std::vector<chain::TxId>> ids;
    ids.reserve(harness.clients.size());
    for (const auto& client : harness.clients) {
      EXPECT_GT(client->submitted(), 500u);
      ids.push_back(client->submitted_ids());
    }
    return ids;
  };

  EXPECT_EQ(run(/*batched=*/false), run(/*batched=*/true));
}

// Golden-file gate for the whole stack: a faulted campaign (redbelly under
// crash, the paper's flagship cell) must reproduce its checked-in report
// byte-for-byte. Any change that perturbs event order, RNG draw order or
// serialization shows up here as a one-byte diff.
TEST(Arrivals, FaultedCampaignReportMatchesGoldenBytes) {
  ScenarioSpec spec;
  spec.chain = "redbelly";
  spec.fault = "crash";
  spec.duration_s = 60;
  const ResolvedScenario resolved = resolve_scenario(spec);
  const SensitivityRun run = run_sensitivity(resolved.config);
  const std::string json =
      to_json(resolved.config.chain, resolved.config.fault, run);

  std::ifstream in(std::string(STABL_TEST_GOLDEN_DIR) +
                   "/redbelly_crash.report.json");
  ASSERT_TRUE(in.good()) << "missing golden report";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string golden = buffer.str();
  if (!golden.empty() && golden.back() == '\n') golden.pop_back();
  EXPECT_EQ(json, golden);
}

}  // namespace
}  // namespace stabl::core
