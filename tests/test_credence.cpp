// Byzantine node tolerance beyond latency (§7 motivation + the paper's
// future work): a client that trusts a single node can be deceived by a
// Byzantine RPC endpoint; the credence.js-style verified client accepts a
// result only when t+1 replicas report the same hash.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "core/sensitivity.hpp"
#include "chains/redbelly/redbelly.hpp"

namespace stabl::core {
namespace {

using testing::Harness;

void build_redbelly(Harness& harness) {
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = 77;
  harness.nodes = redbelly::make_cluster(harness.simulation, harness.network,
                                         node_config);
}

ClientMachine* add_client(Harness& harness, std::vector<net::NodeId> eps,
                          std::size_t matching, double tps = 20.0,
                          sim::Time stop = sim::sec(20)) {
  ClientConfig config;
  config.id = static_cast<net::NodeId>(10 + harness.clients.size());
  config.account = static_cast<chain::AccountId>(harness.clients.size());
  config.recipient = 999;
  config.endpoints = std::move(eps);
  config.tps = tps;
  config.stop_at = stop;
  config.required_matching = matching;
  config.tx_seed = chain::mix64(5);
  harness.clients.push_back(
      std::make_unique<ClientMachine>(harness.simulation, harness.network,
                                      config));
  return harness.clients.back().get();
}

/// Accepted transactions that are NOT actually on chain = deceptions.
std::uint64_t deceived(const Harness& harness, const ClientMachine& client) {
  std::uint64_t count = 0;
  for (const auto& [id, hash] : client.accepted_hashes()) {
    if (!harness.nodes[0]->ledger().is_committed(id)) ++count;
  }
  return count;
}

TEST(Credence, NaiveClientIsDeceivedByByzantineEndpoint) {
  Harness harness;
  build_redbelly(harness);
  harness.nodes[0]->set_rpc_byzantine(true);
  auto* client = add_client(harness, {0}, /*matching=*/0);
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  // Every "commit" the naive client saw was fabricated.
  EXPECT_GT(client->committed(), 300u);
  EXPECT_EQ(deceived(harness, *client), client->committed());
}

TEST(Credence, VerifiedClientSurvivesOneByzantineEndpoint) {
  Harness harness;
  build_redbelly(harness);
  harness.nodes[0]->set_rpc_byzantine(true);
  // 4 endpoints, accept on t+1 = 4... with 1 liar among 4, require 3
  // matching honest answers (t_B+1 rule with the liar never matching).
  auto* client = add_client(harness, {0, 1, 2, 3}, /*matching=*/3);
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  EXPECT_GT(client->committed(), 300u);
  EXPECT_EQ(deceived(harness, *client), 0u)
      << "matching-quorum acceptance filters the fabricated responses";
  // The client observed the conflicting responses (the lie is visible).
  EXPECT_GT(client->conflicting_responses(), 300u);
}

TEST(Credence, VerifiedClientAgainstHonestEndpointsIsClean) {
  Harness harness;
  build_redbelly(harness);
  auto* client = add_client(harness, {0, 1, 2, 3}, /*matching=*/3);
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  EXPECT_GT(client->committed(), 300u);
  EXPECT_EQ(client->conflicting_responses(), 0u);
  EXPECT_EQ(deceived(harness, *client), 0u);
}

TEST(Credence, MatchingQuorumIsFasterThanWaitForAll) {
  // Accept-on-3-matching responds at the 3rd fastest replica instead of
  // the slowest of 4 — redundancy without the full latency penalty.
  Harness harness;
  build_redbelly(harness);
  auto* wait_all = add_client(harness, {0, 1, 2, 3}, /*matching=*/0);
  auto* matching = add_client(harness, {0, 1, 2, 3}, /*matching=*/3);
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  ASSERT_GT(wait_all->committed(), 300u);
  ASSERT_GT(matching->committed(), 300u);
  const Ecdf slow(wait_all->latencies());
  const Ecdf fast(matching->latencies());
  EXPECT_LE(fast.mean(), slow.mean() + 1e-9);
}

TEST(Credence, ByzantineRpcFlagDoesNotAffectConsensus) {
  // The lying node only cheats its RPC clients; it still participates in
  // consensus correctly (the paper's threat model for §7).
  Harness harness;
  build_redbelly(harness);
  harness.nodes[0]->set_rpc_byzantine(true);
  add_client(harness, {1}, 0);  // honest endpoint
  harness.start_all();
  harness.simulation.run_until(sim::sec(25));
  EXPECT_GT(harness.clients[0]->committed(), 300u);
  EXPECT_EQ(deceived(harness, *harness.clients[0]), 0u);
  testing::expect_prefix_consistent(harness);
}

}  // namespace
}  // namespace stabl::core
