// Campaign orchestration tests: matrix coverage, output formats, the CI
// gate semantics.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

namespace stabl::core {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.chains = {ChainKind::kRedbelly};
  config.faults = {FaultType::kNone, FaultType::kCrash};
  config.base.duration = sim::sec(30);
  config.base.inject_at = sim::sec(10);
  config.base.recover_at = sim::sec(20);
  return config;
}

TEST(Campaign, RunsEveryCellAndRecordsRadar) {
  int cells = 0;
  CampaignConfig config = small_campaign();
  config.on_cell_done = [&](ChainKind, FaultType, std::uint64_t,
                            const SensitivityRun&) { ++cells; };
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(cells, 2);
  EXPECT_EQ(result.runs.size(), 2u);
  ASSERT_NE(result.get(ChainKind::kRedbelly, FaultType::kCrash), nullptr);
  EXPECT_EQ(result.get(ChainKind::kAptos, FaultType::kCrash), nullptr);
  ASSERT_NE(result.radar.get(ChainKind::kRedbelly, FaultType::kCrash),
            nullptr);
}

TEST(Campaign, CsvHasOneRowPerCell) {
  const CampaignResult result = run_campaign(small_campaign());
  const std::string csv = result.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2
  EXPECT_NE(csv.find("redbelly,crash,"), std::string::npos);
}

TEST(Campaign, JsonIsAnArrayOfCells) {
  const CampaignResult result = run_campaign(small_campaign());
  const std::string json = result.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"chain\":\"redbelly\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\":\"crash\""), std::string::npos);
}

TEST(CampaignGateCheck, PassesWithinBounds) {
  const CampaignResult result = run_campaign(small_campaign());
  CampaignGate gate;
  gate.max_score[FaultType::kCrash] = 1e9;
  gate.max_score[FaultType::kNone] = 1e9;
  EXPECT_TRUE(check_gate(result, gate).empty());
}

TEST(CampaignGateCheck, FlagsExceededScores) {
  const CampaignResult result = run_campaign(small_campaign());
  CampaignGate gate;
  gate.max_score[FaultType::kCrash] = -1.0;  // impossible bound
  const auto violations = check_gate(result, gate);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("redbelly/crash"), std::string::npos);
  EXPECT_NE(violations[0].find("exceeds gate"), std::string::npos);
}

TEST(CampaignGateCheck, FlagsUnexpectedLiveness) {
  // Redbelly survives f=t crashes; a gate that expects it to die flags it.
  const CampaignResult result = run_campaign(small_campaign());
  CampaignGate gate;
  gate.expected_infinite = {{ChainKind::kRedbelly, FaultType::kCrash}};
  const auto violations = check_gate(result, gate);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("expected liveness loss"),
            std::string::npos);
}

TEST(CampaignGateCheck, FlagsUnexpectedDeath) {
  CampaignConfig config = small_campaign();
  config.faults = {FaultType::kCrash};
  config.base.fault_count = 4;  // beyond t: Redbelly halts
  const CampaignResult result = run_campaign(config);
  CampaignGate gate;
  gate.max_score[FaultType::kCrash] = 1e9;
  const auto violations = check_gate(result, gate);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("unexpected liveness loss"),
            std::string::npos);
}

TEST(CampaignGateCheck, CoarseModeIgnoresLivenessLoss) {
  CampaignConfig config = small_campaign();
  config.faults = {FaultType::kCrash};
  config.base.fault_count = 4;  // beyond t: Redbelly halts
  const CampaignResult result = run_campaign(config);
  CampaignGate gate;
  gate.flag_unexpected_liveness_loss = false;
  EXPECT_TRUE(check_gate(result, gate).empty());
}

}  // namespace
}  // namespace stabl::core
