# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("chain")
subdirs("chains/algorand")
subdirs("chains/aptos")
subdirs("chains/avalanche")
subdirs("chains/redbelly")
subdirs("chains/solana")
subdirs("core")
