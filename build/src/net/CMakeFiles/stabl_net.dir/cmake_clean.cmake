file(REMOVE_RECURSE
  "CMakeFiles/stabl_net.dir/connection.cpp.o"
  "CMakeFiles/stabl_net.dir/connection.cpp.o.d"
  "CMakeFiles/stabl_net.dir/latency.cpp.o"
  "CMakeFiles/stabl_net.dir/latency.cpp.o.d"
  "CMakeFiles/stabl_net.dir/network.cpp.o"
  "CMakeFiles/stabl_net.dir/network.cpp.o.d"
  "libstabl_net.a"
  "libstabl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
