# Empty compiler generated dependencies file for stabl_net.
# This may be replaced when dependencies are built.
