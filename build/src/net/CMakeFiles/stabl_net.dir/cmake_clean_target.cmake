file(REMOVE_RECURSE
  "libstabl_net.a"
)
