file(REMOVE_RECURSE
  "libstabl_redbelly.a"
)
