file(REMOVE_RECURSE
  "CMakeFiles/stabl_redbelly.dir/redbelly.cpp.o"
  "CMakeFiles/stabl_redbelly.dir/redbelly.cpp.o.d"
  "libstabl_redbelly.a"
  "libstabl_redbelly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_redbelly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
