# Empty compiler generated dependencies file for stabl_redbelly.
# This may be replaced when dependencies are built.
