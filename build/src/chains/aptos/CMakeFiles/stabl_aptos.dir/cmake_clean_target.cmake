file(REMOVE_RECURSE
  "libstabl_aptos.a"
)
