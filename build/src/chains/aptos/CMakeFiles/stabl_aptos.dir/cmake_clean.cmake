file(REMOVE_RECURSE
  "CMakeFiles/stabl_aptos.dir/aptos.cpp.o"
  "CMakeFiles/stabl_aptos.dir/aptos.cpp.o.d"
  "libstabl_aptos.a"
  "libstabl_aptos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_aptos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
