# Empty compiler generated dependencies file for stabl_aptos.
# This may be replaced when dependencies are built.
