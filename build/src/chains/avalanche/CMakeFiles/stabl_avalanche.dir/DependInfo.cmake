
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chains/avalanche/avalanche.cpp" "src/chains/avalanche/CMakeFiles/stabl_avalanche.dir/avalanche.cpp.o" "gcc" "src/chains/avalanche/CMakeFiles/stabl_avalanche.dir/avalanche.cpp.o.d"
  "/root/repo/src/chains/avalanche/throttler.cpp" "src/chains/avalanche/CMakeFiles/stabl_avalanche.dir/throttler.cpp.o" "gcc" "src/chains/avalanche/CMakeFiles/stabl_avalanche.dir/throttler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/stabl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stabl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stabl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
