# Empty dependencies file for stabl_avalanche.
# This may be replaced when dependencies are built.
