file(REMOVE_RECURSE
  "libstabl_avalanche.a"
)
