file(REMOVE_RECURSE
  "CMakeFiles/stabl_avalanche.dir/avalanche.cpp.o"
  "CMakeFiles/stabl_avalanche.dir/avalanche.cpp.o.d"
  "CMakeFiles/stabl_avalanche.dir/throttler.cpp.o"
  "CMakeFiles/stabl_avalanche.dir/throttler.cpp.o.d"
  "libstabl_avalanche.a"
  "libstabl_avalanche.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_avalanche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
