file(REMOVE_RECURSE
  "libstabl_solana.a"
)
