file(REMOVE_RECURSE
  "CMakeFiles/stabl_solana.dir/epoch_schedule.cpp.o"
  "CMakeFiles/stabl_solana.dir/epoch_schedule.cpp.o.d"
  "CMakeFiles/stabl_solana.dir/solana.cpp.o"
  "CMakeFiles/stabl_solana.dir/solana.cpp.o.d"
  "libstabl_solana.a"
  "libstabl_solana.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_solana.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
