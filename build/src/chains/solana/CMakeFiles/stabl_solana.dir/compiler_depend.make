# Empty compiler generated dependencies file for stabl_solana.
# This may be replaced when dependencies are built.
