# CMake generated Testfile for 
# Source directory: /root/repo/src/chains/solana
# Build directory: /root/repo/build/src/chains/solana
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
