file(REMOVE_RECURSE
  "CMakeFiles/stabl_algorand.dir/algorand.cpp.o"
  "CMakeFiles/stabl_algorand.dir/algorand.cpp.o.d"
  "libstabl_algorand.a"
  "libstabl_algorand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_algorand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
