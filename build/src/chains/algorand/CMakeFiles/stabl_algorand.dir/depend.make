# Empty dependencies file for stabl_algorand.
# This may be replaced when dependencies are built.
