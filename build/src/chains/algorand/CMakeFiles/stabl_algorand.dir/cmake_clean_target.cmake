file(REMOVE_RECURSE
  "libstabl_algorand.a"
)
