# Empty dependencies file for stabl_core.
# This may be replaced when dependencies are built.
