file(REMOVE_RECURSE
  "libstabl_core.a"
)
