file(REMOVE_RECURSE
  "CMakeFiles/stabl_core.dir/campaign.cpp.o"
  "CMakeFiles/stabl_core.dir/campaign.cpp.o.d"
  "CMakeFiles/stabl_core.dir/client.cpp.o"
  "CMakeFiles/stabl_core.dir/client.cpp.o.d"
  "CMakeFiles/stabl_core.dir/experiment.cpp.o"
  "CMakeFiles/stabl_core.dir/experiment.cpp.o.d"
  "CMakeFiles/stabl_core.dir/observer.cpp.o"
  "CMakeFiles/stabl_core.dir/observer.cpp.o.d"
  "CMakeFiles/stabl_core.dir/radar.cpp.o"
  "CMakeFiles/stabl_core.dir/radar.cpp.o.d"
  "CMakeFiles/stabl_core.dir/report.cpp.o"
  "CMakeFiles/stabl_core.dir/report.cpp.o.d"
  "CMakeFiles/stabl_core.dir/sensitivity.cpp.o"
  "CMakeFiles/stabl_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/stabl_core.dir/serialize.cpp.o"
  "CMakeFiles/stabl_core.dir/serialize.cpp.o.d"
  "CMakeFiles/stabl_core.dir/throughput.cpp.o"
  "CMakeFiles/stabl_core.dir/throughput.cpp.o.d"
  "CMakeFiles/stabl_core.dir/workload.cpp.o"
  "CMakeFiles/stabl_core.dir/workload.cpp.o.d"
  "libstabl_core.a"
  "libstabl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
