
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/stabl_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/stabl_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/client.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/stabl_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/observer.cpp" "src/core/CMakeFiles/stabl_core.dir/observer.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/observer.cpp.o.d"
  "/root/repo/src/core/radar.cpp" "src/core/CMakeFiles/stabl_core.dir/radar.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/radar.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/stabl_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/stabl_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/stabl_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/throughput.cpp" "src/core/CMakeFiles/stabl_core.dir/throughput.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/throughput.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/stabl_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/stabl_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/stabl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/algorand/CMakeFiles/stabl_algorand.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/aptos/CMakeFiles/stabl_aptos.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/avalanche/CMakeFiles/stabl_avalanche.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/redbelly/CMakeFiles/stabl_redbelly.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/solana/CMakeFiles/stabl_solana.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stabl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stabl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
