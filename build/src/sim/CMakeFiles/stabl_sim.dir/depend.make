# Empty dependencies file for stabl_sim.
# This may be replaced when dependencies are built.
