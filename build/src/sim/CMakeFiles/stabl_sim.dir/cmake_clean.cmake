file(REMOVE_RECURSE
  "CMakeFiles/stabl_sim.dir/event_queue.cpp.o"
  "CMakeFiles/stabl_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/stabl_sim.dir/process.cpp.o"
  "CMakeFiles/stabl_sim.dir/process.cpp.o.d"
  "CMakeFiles/stabl_sim.dir/rng.cpp.o"
  "CMakeFiles/stabl_sim.dir/rng.cpp.o.d"
  "CMakeFiles/stabl_sim.dir/simulation.cpp.o"
  "CMakeFiles/stabl_sim.dir/simulation.cpp.o.d"
  "libstabl_sim.a"
  "libstabl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
