file(REMOVE_RECURSE
  "libstabl_sim.a"
)
