file(REMOVE_RECURSE
  "CMakeFiles/stabl_chain.dir/account.cpp.o"
  "CMakeFiles/stabl_chain.dir/account.cpp.o.d"
  "CMakeFiles/stabl_chain.dir/cpu.cpp.o"
  "CMakeFiles/stabl_chain.dir/cpu.cpp.o.d"
  "CMakeFiles/stabl_chain.dir/ledger.cpp.o"
  "CMakeFiles/stabl_chain.dir/ledger.cpp.o.d"
  "CMakeFiles/stabl_chain.dir/mempool.cpp.o"
  "CMakeFiles/stabl_chain.dir/mempool.cpp.o.d"
  "CMakeFiles/stabl_chain.dir/node.cpp.o"
  "CMakeFiles/stabl_chain.dir/node.cpp.o.d"
  "CMakeFiles/stabl_chain.dir/vrf.cpp.o"
  "CMakeFiles/stabl_chain.dir/vrf.cpp.o.d"
  "libstabl_chain.a"
  "libstabl_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
