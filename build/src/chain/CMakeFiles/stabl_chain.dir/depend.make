# Empty dependencies file for stabl_chain.
# This may be replaced when dependencies are built.
