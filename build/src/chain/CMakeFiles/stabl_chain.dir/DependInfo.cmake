
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/account.cpp" "src/chain/CMakeFiles/stabl_chain.dir/account.cpp.o" "gcc" "src/chain/CMakeFiles/stabl_chain.dir/account.cpp.o.d"
  "/root/repo/src/chain/cpu.cpp" "src/chain/CMakeFiles/stabl_chain.dir/cpu.cpp.o" "gcc" "src/chain/CMakeFiles/stabl_chain.dir/cpu.cpp.o.d"
  "/root/repo/src/chain/ledger.cpp" "src/chain/CMakeFiles/stabl_chain.dir/ledger.cpp.o" "gcc" "src/chain/CMakeFiles/stabl_chain.dir/ledger.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/stabl_chain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/stabl_chain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/node.cpp" "src/chain/CMakeFiles/stabl_chain.dir/node.cpp.o" "gcc" "src/chain/CMakeFiles/stabl_chain.dir/node.cpp.o.d"
  "/root/repo/src/chain/vrf.cpp" "src/chain/CMakeFiles/stabl_chain.dir/vrf.cpp.o" "gcc" "src/chain/CMakeFiles/stabl_chain.dir/vrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/stabl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stabl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
