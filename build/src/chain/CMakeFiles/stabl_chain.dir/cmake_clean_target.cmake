file(REMOVE_RECURSE
  "libstabl_chain.a"
)
