file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_byzantine_rpc.dir/micro_ablation_byzantine_rpc.cpp.o"
  "CMakeFiles/micro_ablation_byzantine_rpc.dir/micro_ablation_byzantine_rpc.cpp.o.d"
  "micro_ablation_byzantine_rpc"
  "micro_ablation_byzantine_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_byzantine_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
