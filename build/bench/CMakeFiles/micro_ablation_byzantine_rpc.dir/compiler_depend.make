# Empty compiler generated dependencies file for micro_ablation_byzantine_rpc.
# This may be replaced when dependencies are built.
