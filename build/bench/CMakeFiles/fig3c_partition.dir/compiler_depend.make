# Empty compiler generated dependencies file for fig3c_partition.
# This may be replaced when dependencies are built.
