file(REMOVE_RECURSE
  "CMakeFiles/fig3c_partition.dir/fig3c_partition.cpp.o"
  "CMakeFiles/fig3c_partition.dir/fig3c_partition.cpp.o.d"
  "fig3c_partition"
  "fig3c_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
