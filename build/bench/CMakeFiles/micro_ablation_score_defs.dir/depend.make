# Empty dependencies file for micro_ablation_score_defs.
# This may be replaced when dependencies are built.
