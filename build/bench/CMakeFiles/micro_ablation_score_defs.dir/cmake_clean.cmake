file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_score_defs.dir/micro_ablation_score_defs.cpp.o"
  "CMakeFiles/micro_ablation_score_defs.dir/micro_ablation_score_defs.cpp.o.d"
  "micro_ablation_score_defs"
  "micro_ablation_score_defs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_score_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
