# Empty compiler generated dependencies file for micro_scale_sweep.
# This may be replaced when dependencies are built.
