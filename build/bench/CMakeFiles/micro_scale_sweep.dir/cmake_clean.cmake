file(REMOVE_RECURSE
  "CMakeFiles/micro_scale_sweep.dir/micro_scale_sweep.cpp.o"
  "CMakeFiles/micro_scale_sweep.dir/micro_scale_sweep.cpp.o.d"
  "micro_scale_sweep"
  "micro_scale_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scale_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
