file(REMOVE_RECURSE
  "CMakeFiles/fig5_throughput_transient.dir/fig5_throughput_transient.cpp.o"
  "CMakeFiles/fig5_throughput_transient.dir/fig5_throughput_transient.cpp.o.d"
  "fig5_throughput_transient"
  "fig5_throughput_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
