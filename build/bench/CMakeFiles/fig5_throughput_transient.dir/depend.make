# Empty dependencies file for fig5_throughput_transient.
# This may be replaced when dependencies are built.
