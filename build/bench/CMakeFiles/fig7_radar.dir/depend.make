# Empty dependencies file for fig7_radar.
# This may be replaced when dependencies are built.
