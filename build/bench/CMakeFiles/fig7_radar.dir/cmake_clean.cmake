file(REMOVE_RECURSE
  "CMakeFiles/fig7_radar.dir/fig7_radar.cpp.o"
  "CMakeFiles/fig7_radar.dir/fig7_radar.cpp.o.d"
  "fig7_radar"
  "fig7_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
