file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput_crash.dir/fig4_throughput_crash.cpp.o"
  "CMakeFiles/fig4_throughput_crash.dir/fig4_throughput_crash.cpp.o.d"
  "fig4_throughput_crash"
  "fig4_throughput_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
