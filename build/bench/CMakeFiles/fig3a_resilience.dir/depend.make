# Empty dependencies file for fig3a_resilience.
# This may be replaced when dependencies are built.
