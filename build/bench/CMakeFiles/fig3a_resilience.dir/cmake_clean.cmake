file(REMOVE_RECURSE
  "CMakeFiles/fig3a_resilience.dir/fig3a_resilience.cpp.o"
  "CMakeFiles/fig3a_resilience.dir/fig3a_resilience.cpp.o.d"
  "fig3a_resilience"
  "fig3a_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
