# Empty compiler generated dependencies file for fig3d_byzantine.
# This may be replaced when dependencies are built.
