file(REMOVE_RECURSE
  "CMakeFiles/fig3d_byzantine.dir/fig3d_byzantine.cpp.o"
  "CMakeFiles/fig3d_byzantine.dir/fig3d_byzantine.cpp.o.d"
  "fig3d_byzantine"
  "fig3d_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
