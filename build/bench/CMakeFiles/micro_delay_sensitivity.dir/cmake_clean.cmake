file(REMOVE_RECURSE
  "CMakeFiles/micro_delay_sensitivity.dir/micro_delay_sensitivity.cpp.o"
  "CMakeFiles/micro_delay_sensitivity.dir/micro_delay_sensitivity.cpp.o.d"
  "micro_delay_sensitivity"
  "micro_delay_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_delay_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
