# Empty compiler generated dependencies file for micro_delay_sensitivity.
# This may be replaced when dependencies are built.
