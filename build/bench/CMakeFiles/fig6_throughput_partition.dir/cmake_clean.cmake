file(REMOVE_RECURSE
  "CMakeFiles/fig6_throughput_partition.dir/fig6_throughput_partition.cpp.o"
  "CMakeFiles/fig6_throughput_partition.dir/fig6_throughput_partition.cpp.o.d"
  "fig6_throughput_partition"
  "fig6_throughput_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_throughput_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
