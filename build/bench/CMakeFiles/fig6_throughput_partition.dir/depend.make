# Empty dependencies file for fig6_throughput_partition.
# This may be replaced when dependencies are built.
