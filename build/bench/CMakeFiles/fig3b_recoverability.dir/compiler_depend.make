# Empty compiler generated dependencies file for fig3b_recoverability.
# This may be replaced when dependencies are built.
