file(REMOVE_RECURSE
  "CMakeFiles/fig3b_recoverability.dir/fig3b_recoverability.cpp.o"
  "CMakeFiles/fig3b_recoverability.dir/fig3b_recoverability.cpp.o.d"
  "fig3b_recoverability"
  "fig3b_recoverability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_recoverability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
