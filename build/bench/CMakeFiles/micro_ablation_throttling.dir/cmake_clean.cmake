file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_throttling.dir/micro_ablation_throttling.cpp.o"
  "CMakeFiles/micro_ablation_throttling.dir/micro_ablation_throttling.cpp.o.d"
  "micro_ablation_throttling"
  "micro_ablation_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
