# Empty dependencies file for micro_ablation_throttling.
# This may be replaced when dependencies are built.
