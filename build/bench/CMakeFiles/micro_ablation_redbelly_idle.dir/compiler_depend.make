# Empty compiler generated dependencies file for micro_ablation_redbelly_idle.
# This may be replaced when dependencies are built.
