file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_redbelly_idle.dir/micro_ablation_redbelly_idle.cpp.o"
  "CMakeFiles/micro_ablation_redbelly_idle.dir/micro_ablation_redbelly_idle.cpp.o.d"
  "micro_ablation_redbelly_idle"
  "micro_ablation_redbelly_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_redbelly_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
