file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_solana_epochs.dir/micro_ablation_solana_epochs.cpp.o"
  "CMakeFiles/micro_ablation_solana_epochs.dir/micro_ablation_solana_epochs.cpp.o.d"
  "micro_ablation_solana_epochs"
  "micro_ablation_solana_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_solana_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
