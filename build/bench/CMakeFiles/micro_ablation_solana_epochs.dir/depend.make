# Empty dependencies file for micro_ablation_solana_epochs.
# This may be replaced when dependencies are built.
