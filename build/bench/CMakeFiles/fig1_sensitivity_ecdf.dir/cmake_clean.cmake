file(REMOVE_RECURSE
  "CMakeFiles/fig1_sensitivity_ecdf.dir/fig1_sensitivity_ecdf.cpp.o"
  "CMakeFiles/fig1_sensitivity_ecdf.dir/fig1_sensitivity_ecdf.cpp.o.d"
  "fig1_sensitivity_ecdf"
  "fig1_sensitivity_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sensitivity_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
