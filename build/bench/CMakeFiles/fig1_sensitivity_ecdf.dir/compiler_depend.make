# Empty compiler generated dependencies file for fig1_sensitivity_ecdf.
# This may be replaced when dependencies are built.
