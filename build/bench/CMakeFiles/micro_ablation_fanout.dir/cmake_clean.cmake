file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_fanout.dir/micro_ablation_fanout.cpp.o"
  "CMakeFiles/micro_ablation_fanout.dir/micro_ablation_fanout.cpp.o.d"
  "micro_ablation_fanout"
  "micro_ablation_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
