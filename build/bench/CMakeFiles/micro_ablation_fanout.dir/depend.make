# Empty dependencies file for micro_ablation_fanout.
# This may be replaced when dependencies are built.
