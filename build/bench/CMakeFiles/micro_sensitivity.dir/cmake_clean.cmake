file(REMOVE_RECURSE
  "CMakeFiles/micro_sensitivity.dir/micro_sensitivity.cpp.o"
  "CMakeFiles/micro_sensitivity.dir/micro_sensitivity.cpp.o.d"
  "micro_sensitivity"
  "micro_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
