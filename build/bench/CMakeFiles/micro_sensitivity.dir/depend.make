# Empty dependencies file for micro_sensitivity.
# This may be replaced when dependencies are built.
