# Empty dependencies file for test_node_base.
# This may be replaced when dependencies are built.
