file(REMOVE_RECURSE
  "CMakeFiles/test_node_base.dir/test_node_base.cpp.o"
  "CMakeFiles/test_node_base.dir/test_node_base.cpp.o.d"
  "test_node_base"
  "test_node_base.pdb"
  "test_node_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
