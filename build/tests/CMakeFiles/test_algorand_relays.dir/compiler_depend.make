# Empty compiler generated dependencies file for test_algorand_relays.
# This may be replaced when dependencies are built.
