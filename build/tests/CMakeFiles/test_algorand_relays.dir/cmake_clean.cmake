file(REMOVE_RECURSE
  "CMakeFiles/test_algorand_relays.dir/test_algorand_relays.cpp.o"
  "CMakeFiles/test_algorand_relays.dir/test_algorand_relays.cpp.o.d"
  "test_algorand_relays"
  "test_algorand_relays.pdb"
  "test_algorand_relays[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorand_relays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
