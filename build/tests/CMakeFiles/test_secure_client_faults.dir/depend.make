# Empty dependencies file for test_secure_client_faults.
# This may be replaced when dependencies are built.
