file(REMOVE_RECURSE
  "CMakeFiles/test_secure_client_faults.dir/test_secure_client_faults.cpp.o"
  "CMakeFiles/test_secure_client_faults.dir/test_secure_client_faults.cpp.o.d"
  "test_secure_client_faults"
  "test_secure_client_faults.pdb"
  "test_secure_client_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secure_client_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
