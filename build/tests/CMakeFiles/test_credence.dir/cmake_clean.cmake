file(REMOVE_RECURSE
  "CMakeFiles/test_credence.dir/test_credence.cpp.o"
  "CMakeFiles/test_credence.dir/test_credence.cpp.o.d"
  "test_credence"
  "test_credence.pdb"
  "test_credence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_credence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
