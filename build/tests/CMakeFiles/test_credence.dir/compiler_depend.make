# Empty compiler generated dependencies file for test_credence.
# This may be replaced when dependencies are built.
