# Empty dependencies file for test_aptos.
# This may be replaced when dependencies are built.
