file(REMOVE_RECURSE
  "CMakeFiles/test_aptos.dir/test_aptos.cpp.o"
  "CMakeFiles/test_aptos.dir/test_aptos.cpp.o.d"
  "test_aptos"
  "test_aptos.pdb"
  "test_aptos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aptos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
