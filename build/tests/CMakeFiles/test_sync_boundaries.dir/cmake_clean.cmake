file(REMOVE_RECURSE
  "CMakeFiles/test_sync_boundaries.dir/test_sync_boundaries.cpp.o"
  "CMakeFiles/test_sync_boundaries.dir/test_sync_boundaries.cpp.o.d"
  "test_sync_boundaries"
  "test_sync_boundaries.pdb"
  "test_sync_boundaries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
