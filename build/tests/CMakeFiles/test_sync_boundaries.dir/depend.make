# Empty dependencies file for test_sync_boundaries.
# This may be replaced when dependencies are built.
