# Empty dependencies file for test_churn_metrics.
# This may be replaced when dependencies are built.
