file(REMOVE_RECURSE
  "CMakeFiles/test_churn_metrics.dir/test_churn_metrics.cpp.o"
  "CMakeFiles/test_churn_metrics.dir/test_churn_metrics.cpp.o.d"
  "test_churn_metrics"
  "test_churn_metrics.pdb"
  "test_churn_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_churn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
