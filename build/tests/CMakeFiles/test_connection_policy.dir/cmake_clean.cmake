file(REMOVE_RECURSE
  "CMakeFiles/test_connection_policy.dir/test_connection_policy.cpp.o"
  "CMakeFiles/test_connection_policy.dir/test_connection_policy.cpp.o.d"
  "test_connection_policy"
  "test_connection_policy.pdb"
  "test_connection_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connection_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
