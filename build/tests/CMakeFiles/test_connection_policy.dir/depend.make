# Empty dependencies file for test_connection_policy.
# This may be replaced when dependencies are built.
