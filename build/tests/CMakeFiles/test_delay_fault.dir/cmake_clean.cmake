file(REMOVE_RECURSE
  "CMakeFiles/test_delay_fault.dir/test_delay_fault.cpp.o"
  "CMakeFiles/test_delay_fault.dir/test_delay_fault.cpp.o.d"
  "test_delay_fault"
  "test_delay_fault.pdb"
  "test_delay_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
