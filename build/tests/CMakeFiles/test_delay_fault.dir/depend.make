# Empty dependencies file for test_delay_fault.
# This may be replaced when dependencies are built.
