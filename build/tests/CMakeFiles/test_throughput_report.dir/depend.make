# Empty dependencies file for test_throughput_report.
# This may be replaced when dependencies are built.
