file(REMOVE_RECURSE
  "CMakeFiles/test_throughput_report.dir/test_throughput_report.cpp.o"
  "CMakeFiles/test_throughput_report.dir/test_throughput_report.cpp.o.d"
  "test_throughput_report"
  "test_throughput_report.pdb"
  "test_throughput_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throughput_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
