file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_schedule.dir/test_epoch_schedule.cpp.o"
  "CMakeFiles/test_epoch_schedule.dir/test_epoch_schedule.cpp.o.d"
  "test_epoch_schedule"
  "test_epoch_schedule.pdb"
  "test_epoch_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
