# Empty dependencies file for test_epoch_schedule.
# This may be replaced when dependencies are built.
