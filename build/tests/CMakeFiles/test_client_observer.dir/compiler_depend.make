# Empty compiler generated dependencies file for test_client_observer.
# This may be replaced when dependencies are built.
