file(REMOVE_RECURSE
  "CMakeFiles/test_client_observer.dir/test_client_observer.cpp.o"
  "CMakeFiles/test_client_observer.dir/test_client_observer.cpp.o.d"
  "test_client_observer"
  "test_client_observer.pdb"
  "test_client_observer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
