file(REMOVE_RECURSE
  "CMakeFiles/test_chain_substrate.dir/test_chain_substrate.cpp.o"
  "CMakeFiles/test_chain_substrate.dir/test_chain_substrate.cpp.o.d"
  "test_chain_substrate"
  "test_chain_substrate.pdb"
  "test_chain_substrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
