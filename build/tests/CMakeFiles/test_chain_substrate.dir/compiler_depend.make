# Empty compiler generated dependencies file for test_chain_substrate.
# This may be replaced when dependencies are built.
