# Empty dependencies file for test_chain_parameters.
# This may be replaced when dependencies are built.
