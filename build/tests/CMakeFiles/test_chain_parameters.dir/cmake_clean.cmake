file(REMOVE_RECURSE
  "CMakeFiles/test_chain_parameters.dir/test_chain_parameters.cpp.o"
  "CMakeFiles/test_chain_parameters.dir/test_chain_parameters.cpp.o.d"
  "test_chain_parameters"
  "test_chain_parameters.pdb"
  "test_chain_parameters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
