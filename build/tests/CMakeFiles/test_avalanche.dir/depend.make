# Empty dependencies file for test_avalanche.
# This may be replaced when dependencies are built.
