file(REMOVE_RECURSE
  "CMakeFiles/test_avalanche.dir/test_avalanche.cpp.o"
  "CMakeFiles/test_avalanche.dir/test_avalanche.cpp.o.d"
  "test_avalanche"
  "test_avalanche.pdb"
  "test_avalanche[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avalanche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
