file(REMOVE_RECURSE
  "CMakeFiles/test_solana.dir/test_solana.cpp.o"
  "CMakeFiles/test_solana.dir/test_solana.cpp.o.d"
  "test_solana"
  "test_solana.pdb"
  "test_solana[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solana.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
