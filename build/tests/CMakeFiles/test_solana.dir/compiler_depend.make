# Empty compiler generated dependencies file for test_solana.
# This may be replaced when dependencies are built.
