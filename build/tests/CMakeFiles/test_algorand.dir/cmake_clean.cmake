file(REMOVE_RECURSE
  "CMakeFiles/test_algorand.dir/test_algorand.cpp.o"
  "CMakeFiles/test_algorand.dir/test_algorand.cpp.o.d"
  "test_algorand"
  "test_algorand.pdb"
  "test_algorand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
