# Empty dependencies file for test_algorand.
# This may be replaced when dependencies are built.
