# Empty compiler generated dependencies file for test_protocol_details.
# This may be replaced when dependencies are built.
