file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_details.dir/test_protocol_details.cpp.o"
  "CMakeFiles/test_protocol_details.dir/test_protocol_details.cpp.o.d"
  "test_protocol_details"
  "test_protocol_details.pdb"
  "test_protocol_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
