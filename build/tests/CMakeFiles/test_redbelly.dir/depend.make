# Empty dependencies file for test_redbelly.
# This may be replaced when dependencies are built.
