file(REMOVE_RECURSE
  "CMakeFiles/test_redbelly.dir/test_redbelly.cpp.o"
  "CMakeFiles/test_redbelly.dir/test_redbelly.cpp.o.d"
  "test_redbelly"
  "test_redbelly.pdb"
  "test_redbelly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redbelly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
