# Empty dependencies file for secure_client_demo.
# This may be replaced when dependencies are built.
