file(REMOVE_RECURSE
  "CMakeFiles/secure_client_demo.dir/secure_client_demo.cpp.o"
  "CMakeFiles/secure_client_demo.dir/secure_client_demo.cpp.o.d"
  "secure_client_demo"
  "secure_client_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_client_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
