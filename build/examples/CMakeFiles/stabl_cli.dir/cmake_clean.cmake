file(REMOVE_RECURSE
  "CMakeFiles/stabl_cli.dir/stabl_cli.cpp.o"
  "CMakeFiles/stabl_cli.dir/stabl_cli.cpp.o.d"
  "stabl_cli"
  "stabl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
