# Empty dependencies file for stabl_cli.
# This may be replaced when dependencies are built.
