
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/regression_gate.cpp" "examples/CMakeFiles/regression_gate.dir/regression_gate.cpp.o" "gcc" "examples/CMakeFiles/regression_gate.dir/regression_gate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stabl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/algorand/CMakeFiles/stabl_algorand.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/aptos/CMakeFiles/stabl_aptos.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/avalanche/CMakeFiles/stabl_avalanche.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/redbelly/CMakeFiles/stabl_redbelly.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/solana/CMakeFiles/stabl_solana.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/stabl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stabl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stabl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
