file(REMOVE_RECURSE
  "CMakeFiles/regression_gate.dir/regression_gate.cpp.o"
  "CMakeFiles/regression_gate.dir/regression_gate.cpp.o.d"
  "regression_gate"
  "regression_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
